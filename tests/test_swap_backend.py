"""Array vs dict module-table backends: the equivalence contract.

The array-backed :class:`ModuleTable` and the legacy dict triple must
be indistinguishable from outside — identical memberships and
bitwise-equal codelength trajectories end-to-end, byte-identical
per-destination swap wire columns, and bitwise-equal rebuilt tables on
any protocol-generated schedule.  The dict backend is the oracle; it
stays one release exactly so these tests can prove the array backend
against it.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FlowNetwork, InfomapConfig, distributed_infomap
from repro.core.swap import LocalModuleState
from repro.graph import (
    barabasi_albert,
    powerlaw_planted_partition,
    ring_of_cliques,
)
from repro.partition import delegate_partition, local_views_delegate
from repro.simmpi import run_spmd


def _assert_cols_equal(a, b):
    """Exact (dtype + bitwise value) equality of wire column tuples."""
    assert len(a) == len(b)
    for ca, cb in zip(a, b):
        assert ca.dtype == cb.dtype
        np.testing.assert_array_equal(ca, cb)


def _assert_tables_equal(sa, sd):
    """Bitwise-identical table snapshots across the two backends."""
    ta = sa.table_arrays()
    td = sd.table_arrays()
    np.testing.assert_array_equal(ta.mod_ids, td.mod_ids)
    np.testing.assert_array_equal(ta.exit, td.exit)
    np.testing.assert_array_equal(ta.sum_p, td.sum_p)
    np.testing.assert_array_equal(ta.members, td.members)
    assert sa.sum_exit_global == sd.sum_exit_global


class TestEndToEndEquivalence:
    """Same seed ⇒ identical memberships, bitwise codelengths."""

    @pytest.mark.parametrize("nranks", [1, 2, 4])
    @pytest.mark.parametrize("min_label", [True, False])
    def test_planted_partition(self, nranks, min_label):
        lg = powerlaw_planted_partition(300, 6, mu=0.1, seed=11)
        base = InfomapConfig(seed=5, min_label=min_label)
        res = {}
        for backend in ("array", "dict"):
            res[backend] = distributed_infomap(
                lg.graph, nranks, base.with_(table_backend=backend)
            )
        a, d = res["array"], res["dict"]
        np.testing.assert_array_equal(a.membership, d.membership)
        assert a.codelength == d.codelength  # bitwise, not approx
        assert (
            a.extras["codelength_history"] == d.extras["codelength_history"]
        )

    def test_scale_free_with_delegates(self):
        g = barabasi_albert(400, 3, seed=3)
        base = InfomapConfig(seed=9, d_high=2)
        a = distributed_infomap(g, 3, base.with_(table_backend="array"))
        d = distributed_infomap(g, 3, base.with_(table_backend="dict"))
        np.testing.assert_array_equal(a.membership, d.membership)
        assert a.codelength == d.codelength
        assert (
            a.extras["codelength_history"] == d.extras["codelength_history"]
        )

    @pytest.mark.parametrize("batch_size", [0, 256])
    def test_equivalence_holds_with_and_without_batching(self, batch_size):
        lg = ring_of_cliques(8, 6)
        base = InfomapConfig(seed=2, batch_size=batch_size)
        a = distributed_infomap(lg.graph, 4, base.with_(table_backend="array"))
        d = distributed_infomap(lg.graph, 4, base.with_(table_backend="dict"))
        np.testing.assert_array_equal(a.membership, d.membership)
        assert a.codelength == d.codelength


def _paired_states(seed=0):
    """One (array, dict) state pair per rank over the same local views."""
    lg = powerlaw_planted_partition(90, 6, mu=0.15, seed=seed)
    net = FlowNetwork.from_graph(lg.graph)
    dp = delegate_partition(lg.graph, 3, d_high=6)
    views = local_views_delegate(net, dp)
    arr = [LocalModuleState(v, backend="array") for v in views]
    dct = [LocalModuleState(v, backend="dict") for v in views]
    return views, arr, dct


class TestProtocolEquivalence:
    """Random membership-churn schedules through the full protocol."""

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_wire_tables_and_sync_match(self, seed):
        rng = np.random.default_rng(seed)
        views, arr, dct = _paired_states(seed % 7)
        nranks = len(views)
        ghost_indexes = [
            {
                int(v.global_of[li]): li
                for li in range(v.num_owned + v.num_hubs, v.num_local)
            }
            for v in views
        ]
        for _round in range(3):
            # Identical random churn on both backends' memberships.
            for r, v in enumerate(views):
                if v.num_owned == 0:
                    continue
                n_moves = int(rng.integers(0, max(v.num_owned // 3, 2)))
                movers = rng.integers(0, v.num_owned, size=n_moves)
                targets = v.global_of[
                    rng.integers(0, v.num_local, size=n_moves)
                ]
                arr[r].module_of[movers] = targets
                dct[r].module_of[movers] = targets
            hub_mods = (
                set(
                    int(m)
                    for m in rng.choice(
                        views[0].global_of, size=2, replace=False
                    )
                )
                if rng.random() < 0.5 else None
            )

            owns_a = [s.contribution() for s in arr]
            owns_d = [s.contribution() for s in dct]
            for ca, cd in zip(owns_a, owns_d):
                np.testing.assert_array_equal(ca.mod_ids, cd.mod_ids)
                np.testing.assert_array_equal(ca.sum_p, cd.sum_p)
                np.testing.assert_array_equal(ca.exit, cd.exit)
                np.testing.assert_array_equal(ca.members, cd.members)

            # Full (Algorithm 3 literal) wire: byte-identical columns.
            full_a = [
                arr[r].prepare_swap(owns_a[r], hub_mods)
                for r in range(nranks)
            ]
            full_d = [
                dct[r].prepare_swap(owns_d[r], hub_mods)
                for r in range(nranks)
            ]
            for wa, wd in zip(full_a, full_d):
                assert sorted(wa) == sorted(wd)
                for dest in wa:
                    _assert_cols_equal(wa[dest], wd[dest])

            # Delta wire: byte-identical columns and destinations.
            delta_a = [
                arr[r].prepare_swap_delta(owns_a[r], hub_mods)
                for r in range(nranks)
            ]
            delta_d = [
                dct[r].prepare_swap_delta(owns_d[r], hub_mods)
                for r in range(nranks)
            ]
            for wa, wd in zip(delta_a, delta_d):
                assert sorted(wa) == sorted(wd)
                for dest in wa:
                    _assert_cols_equal(wa[dest], wd[dest])

            # Route the deltas, rebuild, compare tables bitwise.
            for dest in range(nranks):
                inbox_a = {
                    src: delta_a[src][dest]
                    for src in range(nranks) if dest in delta_a[src]
                }
                inbox_d = {
                    src: delta_d[src][dest]
                    for src in range(nranks) if dest in delta_d[src]
                }
                arr[dest].apply_swap_delta(inbox_a)
                dct[dest].apply_swap_delta(inbox_d)
                arr[dest].rebuild_table_from_caches(owns_a[dest])
                dct[dest].rebuild_table_from_caches(owns_d[dest])
                _assert_tables_equal(arr[dest], dct[dest])

            # Membership sync: identical wire, identical ghost updates.
            sync_a = [s.prepare_membership_sync_delta() for s in arr]
            sync_d = [s.prepare_membership_sync_delta() for s in dct]
            for wa, wd in zip(sync_a, sync_d):
                assert sorted(wa) == sorted(wd)
                for dest in wa:
                    _assert_cols_equal(wa[dest], wd[dest])
            for dest in range(nranks):
                in_a = [
                    sync_a[src][dest]
                    for src in range(nranks) if dest in sync_a[src]
                ]
                in_d = [
                    sync_d[src][dest]
                    for src in range(nranks) if dest in sync_d[src]
                ]
                ch_a = arr[dest].apply_membership_sync(
                    in_a, ghost_indexes[dest]
                )
                ch_d = dct[dest].apply_membership_sync(
                    in_d, ghost_indexes[dest]
                )
                assert ch_a == ch_d
                np.testing.assert_array_equal(
                    arr[dest].module_of, dct[dest].module_of
                )

    def test_full_rebuild_from_wire_matches(self):
        """rebuild_table over exchanged full batches is bitwise equal."""
        views, arr, dct = _paired_states(3)
        nranks = len(views)
        owns_a = [s.contribution() for s in arr]
        owns_d = [s.contribution() for s in dct]
        full_a = [arr[r].prepare_swap(owns_a[r]) for r in range(nranks)]
        full_d = [dct[r].prepare_swap(owns_d[r]) for r in range(nranks)]
        for dest in range(nranks):
            # Ascending source order, like Communicator.exchange yields.
            batches_a = [
                full_a[src][dest]
                for src in range(nranks)
                if src != dest and dest in full_a[src]
            ]
            batches_d = [
                full_d[src][dest]
                for src in range(nranks)
                if src != dest and dest in full_d[src]
            ]
            arr[dest].rebuild_table(owns_a[dest], batches_a)
            dct[dest].rebuild_table(owns_d[dest], batches_d)
            arr[dest].sum_exit_global = sum(c.total_exit() for c in owns_a)
            dct[dest].sum_exit_global = sum(c.total_exit() for c in owns_d)
            _assert_tables_equal(arr[dest], dct[dest])


class TestSwapMeterInvariant:
    """Metered swap bytes == pickled wire size, on both backends."""

    @pytest.mark.parametrize("backend", ["array", "dict"])
    def test_metered_bytes_match_pickled_columns(self, backend):
        def prog(comm, backend=backend):
            lg = ring_of_cliques(8, 5)
            net = FlowNetwork.from_graph(lg.graph)
            dp = delegate_partition(lg.graph, comm.size, d_high=5)
            views = local_views_delegate(net, dp)
            state = LocalModuleState(views[comm.rank], backend=backend)
            own = state.contribution()
            wire = state.prepare_swap(own)
            comm.set_phase("swaptest")
            comm.exchange(wire)
            comm.set_phase("other")
            return sum(
                len(pickle.dumps(v, pickle.HIGHEST_PROTOCOL))
                for v in wire.values()
            )

        res = run_spmd(prog, 3)
        for r in range(3):
            expected = res.results[r]
            metered = res.ledger.for_rank(r).bytes_by_phase["swaptest"]
            assert metered == expected

    def test_wire_bytes_identical_across_backends(self):
        sizes = {}
        for backend in ("array", "dict"):
            views, arr, dct = _paired_states(1)
            states = arr if backend == "array" else dct
            wires = [s.prepare_swap(s.contribution()) for s in states]
            sizes[backend] = [
                {
                    dest: len(pickle.dumps(w[dest], pickle.HIGHEST_PROTOCOL))
                    for dest in sorted(w)
                }
                for w in wires
            ]
        assert sizes["array"] == sizes["dict"]


class TestApplyMoveBookkeeping:
    """Moving out of a module the table does not know is an error."""

    @pytest.mark.parametrize("backend", ["array", "dict"])
    def test_move_out_of_unknown_module_raises(self, backend):
        views, arr, dct = _paired_states(0)
        state = (arr if backend == "array" else dct)[0]
        state.rebuild_table(state.contribution(), [])
        # Corrupt one vertex's membership to a module id nobody has.
        state.module_of[0] = 10**9
        with pytest.raises(KeyError):
            state.apply_local_move(
                0, 1, p_u=0.01, x_u=0.01, d_old=0.0, d_new=0.005
            )

    @pytest.mark.parametrize("backend", ["array", "dict"])
    def test_known_module_moves_keep_member_counts(self, backend):
        views, arr, dct = _paired_states(0)
        state = (arr if backend == "array" else dct)[0]
        state.rebuild_table(state.contribution(), [])
        old = int(state.module_of[0])
        new = int(state.module_of[1])
        get_q, get_p, get_n = state.table_getters()
        n_old, n_new = get_n(old, 0), get_n(new, 0)
        state.apply_local_move(
            0, new, p_u=0.01, x_u=0.01, d_old=0.0, d_new=0.005
        )
        assert get_n(old, 0) == n_old - 1
        assert get_n(new, 0) == n_new + 1
