"""Overlapped sweep == blocking sweep, bitwise (the equivalence oracle).

``InfomapConfig.overlap`` only moves each request's ``wait()`` from
immediately-after-post to the point its value is consumed; both modes
issue the identical request sequence.  These tests pin the resulting
guarantee: memberships, codelength trajectories, and every *logical*
ledger quantity (bytes, messages, collective calls) are
bitwise-identical with overlap on and off, on the threads and procs
backends alike — only the wait/overlap second meters may differ.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import InfomapConfig, distributed_infomap
from repro.graph import planted_partition

_LOGICAL_FIELDS = (
    "p2p_bytes_sent", "p2p_bytes_recv", "p2p_messages_sent",
    "p2p_messages_recv", "collective_bytes_in", "collective_bytes_out",
    "collective_calls", "barrier_calls", "bytes_by_phase",
    "messages_by_phase", "logical_bytes_by_phase",
)


def _pair(graph, nranks, **kw):
    ra = distributed_infomap(
        graph, nranks, InfomapConfig(overlap=True, **kw)
    )
    rb = distributed_infomap(
        graph, nranks, InfomapConfig(overlap=False, **kw)
    )
    return ra, rb


def _assert_bitwise(ra, rb):
    assert np.array_equal(
        np.asarray(ra.membership), np.asarray(rb.membership)
    )
    assert ra.codelength == rb.codelength
    assert (
        ra.extras["codelength_history"] == rb.extras["codelength_history"]
    )
    for sa, sb in zip(
        ra.extras["comm_snapshot"], rb.extras["comm_snapshot"]
    ):
        for field in _LOGICAL_FIELDS:
            assert sa[field] == sb[field], field


@pytest.fixture(scope="module")
def graph():
    return planted_partition(6, 14, 0.3, 0.02, seed=3).graph


class TestOverlapEquivalence:
    def test_threads_bitwise(self, graph):
        ra, rb = _pair(graph, 4, seed=7)
        _assert_bitwise(ra, rb)

    def test_procs_bitwise(self, graph):
        ra, rb = _pair(graph, 4, seed=7, backend="procs")
        _assert_bitwise(ra, rb)

    def test_threads_bitwise_with_rebalance(self, graph):
        ra, rb = _pair(graph, 4, seed=7, dynamic_rebalance=True)
        _assert_bitwise(ra, rb)
        assert ra.extras["rebalance_events"] == rb.extras["rebalance_events"]

    def test_threads_bitwise_paper_literal_protocol(self, graph):
        # The non-delta membership sync and the always-send swap take
        # the other exchange branch; pin equivalence there too.
        ra, rb = _pair(graph, 3, seed=11, delta_swap=False)
        _assert_bitwise(ra, rb)

    def test_serial_rank_unaffected(self, graph):
        # One rank: no boundary, requests complete eagerly; both modes
        # are the plain sweep.
        ra, rb = _pair(graph, 1, seed=7)
        _assert_bitwise(ra, rb)

    def test_overlap_mode_meters_hidden_seconds(self, graph):
        ra, rb = _pair(graph, 4, seed=7)
        hidden = sum(
            sum(s["overlap_seconds_by_phase"].values())
            for s in ra.extras["comm_snapshot"]
        )
        hidden_blocking = sum(
            sum(s["overlap_seconds_by_phase"].values())
            for s in rb.extras["comm_snapshot"]
        )
        # Overlap mode hides real time behind compute; blocking mode
        # waits at the post site, so its hidden time is (near) zero.
        assert hidden > hidden_blocking

    def test_overlap_field_in_provenance(self):
        cfg = InfomapConfig(overlap=False)
        assert "overlap" in {
            f.name for f in dataclasses.fields(cfg)
        }
        assert cfg.overlap is False
        assert InfomapConfig().overlap is True
