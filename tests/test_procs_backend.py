"""Process backend: correctness, equivalence with threads, failure paths.

The contract under test is the tentpole invariant: ``backend="procs"``
is observationally identical to ``backend="threads"`` — same results,
same logical ledger totals per phase, same error taxonomy — with the
transport (shared-memory rings + rank-0 relay collectives) as the only
difference.
"""

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.core import InfomapConfig, distributed_infomap
from repro.graph import barabasi_albert
from repro.obs.trace import Tracer
from repro.simmpi import (
    AbortError,
    CollectiveMismatchError,
    DeadlockError,
    ProcCommunicator,
    run_spmd,
    run_spmd_procs,
)
from repro.simmpi import procs as procs_mod
from repro.simmpi.shm import ShmControl, ShmRing, spill_in, spill_out

NRANKS = 4


def _no_leaked_children():
    return [p for p in mp.active_children() if p.name.startswith("simmpi-")]


# ---------------------------------------------------------------------------
# shm primitives
# ---------------------------------------------------------------------------

class TestShmRing:
    def test_put_get_roundtrip(self):
        ctx = mp.get_context()
        ring = ShmRing(64 * 1024, ctx=ctx)
        try:
            assert ring.put(2, 7, [b"hello ", b"world"], 11)
            assert ring.get(timeout=1.0) == (2, 7, b"hello world")
            assert ring.try_get() is None
        finally:
            ring.close(unlink=True)

    def test_wraparound(self):
        ctx = mp.get_context()
        ring = ShmRing(16 * 1024, ctx=ctx)
        try:
            # Push/pop enough traffic that records wrap the data area
            # several times; contents must survive the seam.
            for i in range(100):
                payload = bytes([i % 256]) * (300 + i)
                assert ring.put(0, i, [payload], len(payload))
                src, tag, data = ring.get(timeout=1.0)
                assert (src, tag, data) == (0, i, payload)
        finally:
            ring.close(unlink=True)

    def test_inline_reserve_forces_spill_return(self):
        ctx = mp.get_context()
        ring = ShmRing(16 * 1024, ctx=ctx)
        try:
            # An inline record must leave the 4 KiB descriptor reserve
            # free: a payload that fits raw but not raw+reserve is
            # refused (False = "spill instead"), not accepted.
            big = b"x" * (16 * 1024 - 100)
            assert not ring.put(0, 0, [big], len(big), wait=0.01)
            descriptor = spill_out([big], len(big))
            assert ring.put(0, 0, [descriptor], len(descriptor),
                            flags=1, wait=0.5)
            assert ring.get(timeout=1.0) == (0, 0, big)
        finally:
            ring.close(unlink=True)

    def test_spill_roundtrip_unlinks_segment(self):
        descriptor = spill_out([b"abc", b"def"], 6)
        assert spill_in(descriptor) == b"abcdef"
        with pytest.raises(FileNotFoundError):
            spill_in(descriptor)  # one-shot: segment is gone

    def test_get_timeout_returns_none(self):
        ctx = mp.get_context()
        ring = ShmRing(16 * 1024, ctx=ctx)
        try:
            assert ring.get(timeout=0.05) is None
        finally:
            ring.close(unlink=True)

    def test_spin_phase_catches_prompt_record(self):
        # A record posted by another thread while the consumer is in
        # its spin phase is picked up without waiting out a poll slice.
        import threading

        ctx = mp.get_context()
        ring = ShmRing(16 * 1024, ctx=ctx)
        try:
            t = threading.Timer(
                0.005, lambda: ring.put(1, 2, [b"hot"], 3)
            )
            t.start()
            assert ring.get(timeout=5.0) == (1, 2, b"hot")
            t.join()
        finally:
            ring.close(unlink=True)

    def test_spin_budget_env_override(self, monkeypatch):
        from repro.simmpi import shm

        monkeypatch.setattr(shm, "_spin_budget_cache", None)
        monkeypatch.setenv("REPRO_SHM_SPIN", "7")
        assert shm._spin_budget() == 7
        monkeypatch.setattr(shm, "_spin_budget_cache", None)
        monkeypatch.setenv("REPRO_SHM_SPIN", "not-a-number")
        assert shm._spin_budget() == shm._SPIN_DEFAULT
        monkeypatch.setattr(shm, "_spin_budget_cache", None)
        monkeypatch.setenv("REPRO_SHM_SPIN", "0")
        assert shm._spin_budget() == 0
        monkeypatch.setattr(shm, "_spin_budget_cache", None)
        monkeypatch.delenv("REPRO_SHM_SPIN")
        assert shm._spin_budget() == shm._SPIN_DEFAULT
        monkeypatch.setattr(shm, "_spin_budget_cache", None)

    @pytest.mark.parametrize("spin", ["0", "100000"])
    def test_abort_noticed_during_empty_get(self, monkeypatch, spin):
        # Abort-responsiveness regression: poll() must run in both the
        # spin phase and the sliced-wait phase, so an abort raised
        # while a rank is parked on an empty ring surfaces promptly —
        # with spinning disabled and with a spin budget big enough to
        # cover the whole window.
        import threading
        import time as _time

        from repro.simmpi import shm

        monkeypatch.setattr(shm, "_spin_budget_cache", None)
        monkeypatch.setenv("REPRO_SHM_SPIN", spin)
        ctx = mp.get_context()
        ring = ShmRing(16 * 1024, ctx=ctx)
        flag = {"aborted": False}

        def poll():
            if flag["aborted"]:
                raise RuntimeError("abort noticed")

        try:
            t = threading.Timer(
                0.05, lambda: flag.update(aborted=True)
            )
            t.start()
            t0 = _time.monotonic()
            with pytest.raises(RuntimeError, match="abort noticed"):
                ring.get(timeout=30.0, poll=poll)
            elapsed = _time.monotonic() - t0
            t.join()
            # Noticed within a couple of poll slices, not the timeout.
            assert elapsed < 5.0
        finally:
            monkeypatch.setattr(shm, "_spin_budget_cache", None)
            ring.close(unlink=True)


class TestShmControl:
    def test_first_writer_wins(self):
        ctx = mp.get_context()
        ctrl = ShmControl(ctx)
        try:
            assert not ctrl.aborted
            ctrl.abort(3)
            ctrl.abort(1)
            assert ctrl.aborted and ctrl.failed_rank == 3
        finally:
            ctrl.close(unlink=True)


# ---------------------------------------------------------------------------
# collectives + p2p on the procs backend
# ---------------------------------------------------------------------------

def _mixed_program(comm):
    comm.set_phase("reduce")
    total = comm.allreduce(comm.rank + 1)
    arr = comm.bcast(
        np.arange(8, dtype=np.int64) if comm.rank == 0 else None
    )
    comm.set_phase("swap")
    msgs = {
        d: np.full(4, comm.rank * 10 + d, dtype=np.int64)
        for d in range(comm.size)
        if d != comm.rank and (comm.rank + d) % 2 == 0
    }
    got = comm.exchange(msgs)
    comm.barrier()
    gathered = comm.gather((comm.rank, int(arr.sum())), root=0)
    scattered = comm.scatter(
        [f"s{i}" for i in range(comm.size)] if comm.rank == 1 else None,
        root=1,
    )
    return {
        "total": total,
        "got": {s: v.tolist() for s, v in got.items()},
        "gathered": gathered,
        "scattered": scattered,
    }


@pytest.mark.parametrize("copy_mode", ["frames", "pickle"])
def test_procs_matches_threads_results_and_ledger(copy_mode):
    res_t = run_spmd(_mixed_program, NRANKS, copy_mode=copy_mode,
                     backend="threads")
    res_p = run_spmd(_mixed_program, NRANKS, copy_mode=copy_mode,
                     backend="procs")
    assert res_t.results == res_p.results
    for st, sp in zip(res_t.ledger.snapshot(), res_p.ledger.snapshot()):
        # Every counter matches — not just the logical per-phase totals
        # the acceptance invariant demands, but physical bytes and
        # message counts too, because the codec and metering code are
        # shared.  Only the codec wall-clock timings are run-dependent.
        drop = ("encode_seconds_by_phase", "decode_seconds_by_phase")
        assert ({k: v for k, v in st.items() if k not in drop}
                == {k: v for k, v in sp.items() if k not in drop})


def test_procs_p2p_ordering_and_wildcards():
    def prog(comm):
        if comm.rank == 0:
            for i in range(5):
                comm.send(("m", i), 1, tag=i % 2)
            return None
        if comm.rank == 1:
            seen = []
            for _ in range(5):
                obj, src, tag = comm.recv_status()
                assert src == 0
                seen.append((obj[1], tag))
            return seen
        return None

    res = run_spmd(prog, 2, backend="procs")
    # Wildcard receive drains in arrival order across tag keys.
    assert [i for i, _t in res.results[1]] == [0, 1, 2, 3, 4]


def test_procs_spill_path_in_job():
    def prog(comm):
        payload = np.arange(200_000, dtype=np.int64)  # ~1.6 MB
        if comm.rank == 0:
            comm.send(payload, 1)
            return 0
        got = comm.recv(0)
        np.testing.assert_array_equal(got, payload)
        return int(got[-1])

    res = run_spmd_procs(prog, 2, segment_bytes=32 * 1024)
    assert res.results[1] == 199_999
    assert res.ledger.for_rank(0).p2p_bytes_sent > 1_500_000


def test_procs_isend_irecv():
    def prog(comm):
        peer = 1 - comm.rank
        req_r = comm.irecv(source=peer)
        comm.isend(comm.rank * 11, peer)
        return req_r.wait()

    res = run_spmd(prog, 2, backend="procs")
    assert res.results == [11, 0]


# ---------------------------------------------------------------------------
# engine dispatch
# ---------------------------------------------------------------------------

def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="backend"):
        run_spmd(lambda c: c.rank, 2, backend="quantum")


def test_serial_backend_rejects_multirank():
    with pytest.raises(ValueError, match="serial"):
        run_spmd(lambda c: c.rank, 2, backend="serial")


@pytest.mark.parametrize("backend", ["threads", "procs", "serial"])
def test_single_rank_short_circuits(backend):
    # nranks == 1 never launches threads or processes regardless of
    # backend — the serial communicator runs on the calling thread.
    res = run_spmd(lambda c: os.getpid(), 1, backend=backend)
    assert res.results == [os.getpid()]


def test_procs_rejects_copy_mode_none():
    with pytest.raises(ValueError, match="none"):
        run_spmd_procs(lambda c: c.rank, 2, copy_mode="none")


# ---------------------------------------------------------------------------
# failure paths (both backends)
# ---------------------------------------------------------------------------

def _raises_after_work(comm):
    comm.set_phase("warmup")
    comm.allreduce(comm.rank)
    comm.barrier()
    if comm.rank == 1:
        raise ValueError("deliberate failure on rank 1")
    comm.barrier()
    return comm.rank


@pytest.mark.parametrize("backend", ["threads", "procs"])
def test_rank_exception_reraised_with_ledger(backend):
    with pytest.raises(ValueError, match="deliberate failure") as ei:
        run_spmd(_raises_after_work, 3, backend=backend)
    # Completed-phase meters survive the failure on both backends.
    ledger = ei.value.spmd_ledger
    for r in range(3):
        st = ledger.for_rank(r).snapshot()
        assert st["collective_calls"] >= 1
        assert "warmup" in st["messages_by_phase"]
    if backend == "procs":
        # The child's traceback text rides along as the cause.
        assert "deliberate failure on rank 1" in str(ei.value.__cause__)
    assert not _no_leaked_children()


@pytest.mark.parametrize("backend", ["threads", "procs"])
def test_watchdog_timeout_raises_deadlock(backend):
    def hang(comm):
        if comm.rank == 0:
            comm.recv(1)  # rank 1 never sends
        return comm.rank

    with pytest.raises(DeadlockError) as ei:
        run_spmd(hang, 2, backend=backend, timeout=4.0, op_timeout=2.0)
    assert hasattr(ei.value, "spmd_ledger")
    assert not _no_leaked_children()


def test_procs_collective_mismatch_detected():
    def prog(comm):
        if comm.rank == 0:
            comm.allreduce(1)
        else:
            comm.barrier()
        return comm.rank

    with pytest.raises((CollectiveMismatchError, AbortError)):
        run_spmd(prog, 2, backend="procs", timeout=20.0, op_timeout=5.0)
    assert not _no_leaked_children()


def test_procs_hard_death_reported():
    def die(comm):
        comm.barrier()
        if comm.rank == 1:
            os._exit(17)  # below Python: no AbortError, no report
        return comm.rank

    with pytest.raises(Exception) as ei:
        run_spmd(die, 2, backend="procs", timeout=15.0, op_timeout=3.0)
    # Either the parent notices the missing report (RuntimeError) or a
    # surviving rank times out first (DeadlockError) — both carry the
    # partial ledger; silent hangs and bogus "success" are the bugs.
    assert isinstance(ei.value, (RuntimeError, DeadlockError))
    assert hasattr(ei.value, "spmd_ledger")
    assert not _no_leaked_children()


# ---------------------------------------------------------------------------
# setup-failure teardown (regression: partial launches must unwind)
# ---------------------------------------------------------------------------

class _ExplodingTracer(Tracer):
    """Tracer whose buffer creation fails for rank >= 1, mid-setup."""

    def for_rank(self, rank):
        if rank >= 1:
            raise RuntimeError("tracer attach exploded")
        return super().for_rank(rank)


def test_threads_setup_failure_tears_down():
    import threading

    before = threading.active_count()
    with pytest.raises(RuntimeError, match="tracer attach exploded"):
        run_spmd(lambda c: c.allreduce(1), 3, backend="threads",
                 tracer=_ExplodingTracer())
    # Bounded unwind: no rank thread left alive.
    assert threading.active_count() == before
    # The engine is reusable afterwards.
    assert run_spmd(lambda c: c.allreduce(1), 3).results == [3, 3, 3]


def test_procs_setup_failure_tears_down(monkeypatch):
    started = []
    real_start = procs_mod._start_process

    def flaky_start(proc):
        if len(started) >= 1:
            raise OSError("no more processes")
        started.append(proc)
        real_start(proc)

    monkeypatch.setattr(procs_mod, "_start_process", flaky_start)
    with pytest.raises(OSError, match="no more processes"):
        run_spmd(lambda c: c.allreduce(1), 3, backend="procs")
    monkeypatch.setattr(procs_mod, "_start_process", real_start)
    # The already-launched rank was reaped, segments unlinked, and the
    # backend still works.
    assert not _no_leaked_children()
    res = run_spmd(lambda c: c.allreduce(1), 3, backend="procs")
    assert res.results == [3, 3, 3]


def test_procs_unpicklable_result_degrades_gracefully():
    def prog(comm):
        comm.barrier()
        if comm.rank == 0:
            return lambda: None  # cannot cross the result queue
        return comm.rank

    with pytest.raises(RuntimeError, match="unpicklable"):
        run_spmd(prog, 2, backend="procs")
    assert not _no_leaked_children()


# ---------------------------------------------------------------------------
# known_counts fast path
# ---------------------------------------------------------------------------

def _ring_pattern(comm):
    # Static neighbourhood: everyone sends to (rank+1) % size and
    # receives from (rank-1) % size — known_counts is exactly 1.
    dest = (comm.rank + 1) % comm.size
    return {dest: np.array([comm.rank, comm.rank * 2], dtype=np.int64)}


@pytest.mark.parametrize("backend", ["threads", "procs"])
def test_known_counts_matches_dense_oracle(backend):
    def prog(comm):
        msgs = _ring_pattern(comm)
        fast = comm.exchange(msgs, known_counts=1)
        comm.barrier()  # caller-owned round separation
        dense = comm.exchange_dense(msgs)
        assert list(fast) == list(dense)
        for src in fast:
            np.testing.assert_array_equal(fast[src], dense[src])
        return sorted(fast)

    res = run_spmd(prog, NRANKS, backend=backend)
    for r, srcs in enumerate(res.results):
        assert srcs == [(r - 1) % NRANKS]


def test_known_counts_skips_handshake_collective():
    def prog(comm):
        comm.set_phase("hs")
        comm.exchange(_ring_pattern(comm))
        hs = comm.stats.snapshot()
        comm.set_phase("fast")
        comm.exchange(_ring_pattern(comm), known_counts=1)
        return hs, comm.stats.snapshot()

    res = run_spmd(prog, NRANKS)
    for hs, total in res.results:
        # Handshake round: 1 allreduce; fast round: none.
        assert total["collective_calls"] == hs["collective_calls"]
        # Real traffic is metered identically in both rounds: the fast
        # round's bytes are the handshake round's minus exactly the
        # counts-allreduce contribution (the round's only collective).
        assert (total["p2p_messages_sent"] - hs["p2p_messages_sent"]) == 1
        assert (total["bytes_by_phase"]["fast"]
                == hs["bytes_by_phase"]["hs"] - hs["collective_bytes_in"])


def test_known_counts_validation():
    def prog(comm):
        with pytest.raises(ValueError, match="known_counts"):
            comm.exchange({}, known_counts=comm.size)
        with pytest.raises(ValueError, match="known_counts"):
            comm.exchange({}, known_counts=-1)
        comm.barrier()
        return True

    assert run_spmd(prog, 2).results == [True, True]


def test_known_counts_ignored_on_dense_backend():
    from repro.simmpi import SerialCommunicator

    comm = SerialCommunicator()
    assert comm.exchange({}, known_counts=0) == {}


# ---------------------------------------------------------------------------
# tracing on the procs backend
# ---------------------------------------------------------------------------

def test_procs_trace_merges_rank_major():
    def prog(comm):
        comm.set_phase("ph")
        comm.trace.instant("tick", args={"r": comm.rank})
        comm.allreduce(comm.rank)
        return comm.rank

    tracer_t, tracer_p = Tracer(), Tracer()
    run_spmd(prog, 3, backend="threads", tracer=tracer_t)
    res = run_spmd(prog, 3, backend="procs", tracer=tracer_p)
    assert res.trace is tracer_p

    def shape(tr):
        return [
            (e["rank"], e["kind"], e["name"], e.get("phase"),
             e.get("delta"), e.get("args"))
            for e in tr.merged_events()
        ]

    # Same events, same rank-major order; only timestamps differ.
    assert shape(tracer_t) == shape(tracer_p)

    # Meter events reconcile with the merged ledger, as on threads.
    for r in range(3):
        deltas = sum(
            e["delta"] for e in tracer_p.for_rank(r).events
            if e.get("cat") == "comm" and e["name"] == "collective_bytes_in"
        )
        assert deltas == res.ledger.for_rank(r).collective_bytes_in


def test_adopt_rank_events_accumulates():
    from repro.obs.trace import RankTraceBuffer

    tracer = Tracer()
    child = RankTraceBuffer(2, tracer.epoch)
    child.meter("x", 10.0)
    tracer.adopt_rank_events(2, child.events, child._cum)
    buf = tracer.for_rank(2)
    assert len(buf.events) == 1
    buf.meter("x", 5.0)  # cumulative total continues from the child's
    assert buf.events[-1]["value"] == 15.0


# ---------------------------------------------------------------------------
# end-to-end: distributed Infomap equivalence on a scale-free graph
# ---------------------------------------------------------------------------

def test_distributed_infomap_backend_equivalence():
    graph = barabasi_albert(150, 3, seed=7)
    cfg = InfomapConfig(seed=3)
    res_t = distributed_infomap(graph, NRANKS, cfg, backend="threads")
    res_p = distributed_infomap(graph, NRANKS, cfg, backend="procs")
    np.testing.assert_array_equal(res_t.membership, res_p.membership)
    assert res_t.codelength == res_p.codelength
    assert (res_t.extras["codelength_history"]
            == res_p.extras["codelength_history"])
    for st, sp in zip(res_t.extras["comm_snapshot"],
                      res_p.extras["comm_snapshot"]):
        assert st["logical_bytes_by_phase"] == sp["logical_bytes_by_phase"]
        assert st["messages_by_phase"] == sp["messages_by_phase"]


def test_config_backend_field():
    cfg = InfomapConfig(backend="procs")
    assert cfg.backend == "procs"
    with pytest.raises(ValueError, match="backend"):
        InfomapConfig(backend="bogus")


def test_cli_parse_ranks_auto():
    from repro.cli import parse_ranks

    assert parse_ranks("3") == 3
    assert parse_ranks("auto") == (os.cpu_count() or 1)
    with pytest.raises(Exception):
        parse_ranks("zero")
    with pytest.raises(Exception):
        parse_ranks("0")


def test_proc_communicator_repr_and_identity():
    def prog(comm):
        assert isinstance(comm, ProcCommunicator)
        assert "ProcCommunicator" in repr(comm)
        return (comm.rank, comm.size, os.getpid())

    res = run_spmd(prog, 2, backend="procs")
    ranks = [r for r, _s, _p in res.results]
    pids = {p for _r, _s, p in res.results}
    assert ranks == [0, 1]
    assert len(pids) == 2 and os.getpid() not in pids


# ---------------------------------------------------------------------------
# live plane hygiene (segment lifecycle across exit paths)
# ---------------------------------------------------------------------------

def _segment_exists(name: str) -> bool:
    from repro.obs.live import _attach_segment

    try:
        seg = _attach_segment(name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


@pytest.mark.parametrize("exit_path", ["normal", "error", "hard_death"])
def test_live_plane_teardown_unlinks_segment(exit_path):
    """No leaked shm segments or sidecars on any exit path — including
    a child killed below Python (os._exit), which the parent reaps and
    stamps as failed on the plane before teardown."""
    from repro.obs.live import (
        STATUS_FAILED, LivePlane, LiveSnapshot, live_run_dir,
    )

    plane = LivePlane(2, shared=True)
    rid = plane.publish(command="leak-test")
    name = plane.segment_name

    def prog(comm):
        comm.live.update(round=1)
        comm.barrier()
        if exit_path == "error" and comm.rank == 1:
            raise ValueError("deliberate failure on rank 1")
        if exit_path == "hard_death" and comm.rank == 1:
            os._exit(21)
        return comm.rank

    try:
        if exit_path == "normal":
            run_spmd(prog, 2, backend="procs", live=plane)
        else:
            with pytest.raises(Exception):
                run_spmd(prog, 2, backend="procs", live=plane,
                         timeout=20.0, op_timeout=3.0)
        # The plane outlives the job until its owner closes it: a
        # status probe still attaches and sees the terminal stamps.
        snap = LiveSnapshot.attach(rid)
        assert snap.nranks == 2
        if exit_path == "hard_death":
            assert snap.rank(1)["status"] == STATUS_FAILED
    finally:
        plane.close(unlink=True)
    assert not _segment_exists(name)
    assert not live_run_dir(rid).exists()
    assert not _no_leaked_children()
