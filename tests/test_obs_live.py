"""Live telemetry plane: seqlock coherence, reconciliation, watchdog.

The contracts under test:

* **coherence** — a reader attached to a row being hammered by a
  writer never observes a torn (half-written) field combination.
* **reconciliation** — the last live snapshot's byte/message counters
  equal the final CommLedger totals *exactly*, on threads and procs.
* **equivalence** — live-on runs are bitwise-identical to live-off.
* **watchdog** — a deadlocked job's error names the stalled rank with
  its phase/round/heartbeat age instead of a bare global timeout.
* **hygiene** — teardown unlinks segments and sidecars on the normal,
  error, and hard-death exit paths; ``gc_stale_runs`` reaps runs whose
  owner pid is gone.
"""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.core import InfomapConfig, distributed_infomap, sequential_infomap
from repro.core.incremental import IncrementalSession
from repro.graph import barabasi_albert, ring_of_cliques
from repro.graph.delta import GraphDelta
from repro.obs.live import (
    LIVE_FIELDS,
    NULL_LIVE,
    PHASE_IDS,
    SLOTS_PER_RANK,
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_RUNNING,
    LivePlane,
    LiveSnapshot,
    gc_stale_runs,
    list_live_runs,
    live_run_dir,
)
from repro.simmpi import DeadlockError, run_spmd

NRANKS = 4


# ---------------------------------------------------------------------------
# plane / row API
# ---------------------------------------------------------------------------

class TestPlaneApi:
    def test_row_update_add_value(self):
        plane = LivePlane(2)
        row = plane.for_rank(1)
        row.update(level=2, round=5, codelength=3.25)
        row.add("moves", 7)
        row.add_many(bytes_sent=100, messages_sent=1)
        row.add_many(bytes_sent=50, messages_sent=1)
        assert row.value("level") == 2
        assert row.value("round") == 5
        assert row.value("codelength") == 3.25
        assert row.value("moves") == 7
        assert row.value("bytes_sent") == 150
        assert row.value("messages_sent") == 2
        # Rank 0's row is untouched: rows are independent.
        assert plane.for_rank(0).value("moves") == 0

    def test_every_update_stamps_heartbeat(self):
        plane = LivePlane(1)
        row = plane.for_rank(0)
        assert row.value("heartbeat") == 0.0
        row.add("moves", 1)
        t1 = row.value("heartbeat")
        assert t1 == pytest.approx(time.time(), abs=5.0)
        row.beat()
        assert row.value("heartbeat") >= t1

    def test_phase_accepts_names_and_ids(self):
        plane = LivePlane(1)
        row = plane.for_rank(0)
        row.update(phase="rebalance")
        assert row.value("phase") == PHASE_IDS["rebalance"]
        row.update(phase=2)
        assert row.value("phase") == 2
        row.update(phase="no-such-phase")
        assert row.value("phase") == 0

    def test_for_rank_bounds(self):
        plane = LivePlane(2)
        with pytest.raises(ValueError, match="rank"):
            plane.for_rank(2)
        with pytest.raises(ValueError, match="rank"):
            plane.for_rank(-1)

    def test_null_live_is_inert(self):
        assert not NULL_LIVE.enabled
        NULL_LIVE.update(round=1, phase="other")
        NULL_LIVE.add("moves", 5)
        NULL_LIVE.add_many(bytes_sent=1)
        NULL_LIVE.beat()
        assert NULL_LIVE.value("moves") == 0.0

    def test_private_plane_cannot_publish_or_pickle(self):
        import pickle

        plane = LivePlane(2)
        with pytest.raises(TypeError, match="shared"):
            plane.publish()
        with pytest.raises(TypeError, match="shared"):
            pickle.dumps(plane)

    def test_mark_status_repairs_odd_generation(self):
        plane = LivePlane(1)
        # Simulate a writer that died mid-update: generation left odd.
        plane.array[0, 0] = 7.0
        plane.mark_status(0, STATUS_FAILED)
        snap = LiveSnapshot.from_plane(plane)
        assert snap.rank(0)["status"] == STATUS_FAILED
        assert int(plane.array[0, 0]) % 2 == 0

    def test_row_layout_is_cache_line_padded(self):
        assert SLOTS_PER_RANK * 8 % 64 == 0
        assert len(LIVE_FIELDS) + 1 <= SLOTS_PER_RANK


# ---------------------------------------------------------------------------
# seqlock coherence
# ---------------------------------------------------------------------------

def test_seqlock_reader_never_sees_torn_rows():
    """Hammer one row from a writer thread while snapshotting.

    The writer maintains the invariant ``moves == 2 * round`` inside
    every seqlock generation; a torn read would expose a row where it
    does not hold.
    """
    plane = LivePlane(1)
    stop = threading.Event()

    def writer():
        i = 0
        while not stop.is_set():
            i += 1
            plane.for_rank(0).update(round=i, moves=2 * i)

    t = threading.Thread(target=writer, daemon=True)
    t.start()
    try:
        deadline = time.monotonic() + 0.5
        reads = 0
        while time.monotonic() < deadline:
            snap = LiveSnapshot.from_plane(plane)
            d = snap.rank(0)
            assert d["moves"] == 2 * d["round"], d
            reads += 1
        assert reads > 100  # the reader actually exercised the lock
    finally:
        stop.set()
        t.join(timeout=5.0)


# ---------------------------------------------------------------------------
# live <-> final reconciliation
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["threads", "procs"])
def test_live_counters_match_final_ledger(backend):
    graph = barabasi_albert(150, 3, seed=7)
    cfg = InfomapConfig(seed=3, backend=backend)
    plane = LivePlane(NRANKS, shared=(backend == "procs"))
    try:
        res = distributed_infomap(graph, NRANKS, cfg, live=plane)
        snap = LiveSnapshot.from_plane(plane)
        for r, st in enumerate(res.extras["comm_snapshot"]):
            want_bytes = st["p2p_bytes_sent"] + st["collective_bytes_in"]
            want_msgs = st["p2p_messages_sent"] + st["collective_calls"]
            assert snap.field("bytes_sent")[r] == want_bytes
            assert snap.field("messages_sent")[r] == want_msgs
        # Terminal gauges: every rank done, replicated codelength/round.
        assert (snap.field("status") == STATUS_DONE).all()
        history = res.extras["codelength_history"]
        assert (snap.field("codelength")
                == float(history[-1])).all()
        # round is per-level and resets at each coarsening, so the
        # terminal value is the *last* level's round count, >= 1.
        assert (snap.field("round") >= 1).all()
        assert snap.totals()["bytes_sent"] == sum(
            st["p2p_bytes_sent"] + st["collective_bytes_in"]
            for st in res.extras["comm_snapshot"]
        )
    finally:
        plane.close(unlink=True)


def test_live_edges_match_work_counters_sequential():
    graph = ring_of_cliques(8, 6).graph
    cfg = InfomapConfig(seed=1)
    plane = LivePlane(1)
    work: dict = {}
    res = sequential_infomap(graph, cfg, live=plane, work=work)
    row = plane.for_rank(0)
    assert row.value("edges_scanned") == work["edges_scanned"]
    assert row.value("sweeps") == sum(lv.sweeps for lv in res.levels)
    assert row.value("moves") == sum(lv.moves for lv in res.levels)
    assert row.value("codelength") == res.codelength
    assert row.value("level") == res.levels[-1].level


@pytest.mark.parametrize("backend", ["threads", "procs"])
def test_live_on_is_bitwise_identical_to_live_off(backend):
    graph = barabasi_albert(120, 3, seed=11)
    cfg = InfomapConfig(seed=5, backend=backend)
    plain = distributed_infomap(graph, NRANKS, cfg)
    plane = LivePlane(NRANKS, shared=(backend == "procs"))
    try:
        lived = distributed_infomap(graph, NRANKS, cfg, live=plane)
    finally:
        plane.close(unlink=True)
    np.testing.assert_array_equal(plain.membership, lived.membership)
    assert plain.codelength == lived.codelength
    assert (plain.extras["codelength_history"]
            == lived.extras["codelength_history"])


def test_incremental_session_batch_gauges():
    lg = ring_of_cliques(8, 6)
    plane = LivePlane(1)
    session = IncrementalSession(
        lg.graph, InfomapConfig(seed=2), live=plane
    )
    session.solve()
    row = plane.for_rank(0)
    assert row.value("batches") == 0
    n = lg.graph.num_vertices
    delta = GraphDelta.build(
        insert=(np.array([0, 1]), np.array([n // 2, n // 2 + 1]),
                np.array([1.0, 1.0]))
    )
    res = session.update(delta)
    assert row.value("batches") == 1
    assert row.value("codelength") == float(res.codelength)


def test_config_live_field_excluded_from_manifest():
    from repro.obs.manifest import build_manifest

    cfg = InfomapConfig(seed=1, live=LivePlane(1))
    man = build_manifest(config=cfg, nranks=1, copy_mode="none",
                        method="sequential")
    assert "live" not in man["config"]
    assert "tracer" not in man["config"]


# ---------------------------------------------------------------------------
# engine integration + watchdog
# ---------------------------------------------------------------------------

def test_run_spmd_rejects_mismatched_plane():
    with pytest.raises(ValueError, match="live plane"):
        run_spmd(lambda c: c.rank, 2, live=LivePlane(3))


def test_procs_backend_rejects_private_plane():
    with pytest.raises(ValueError, match="shared"):
        run_spmd(lambda c: c.rank, 2, backend="procs", live=LivePlane(2))


@pytest.mark.parametrize("backend", ["serial", "threads", "procs"])
def test_comm_live_reaches_rank_body(backend):
    nranks = 1 if backend == "serial" else 2
    plane = LivePlane(nranks, shared=(backend == "procs"))

    def prog(comm):
        assert comm.live.enabled
        comm.live.update(round=comm.rank + 1)
        comm.live.add("moves", 10 * (comm.rank + 1))
        return comm.rank

    try:
        run_spmd(prog, nranks, backend=backend, live=plane)
        snap = LiveSnapshot.from_plane(plane)
        for r in range(nranks):
            assert snap.rank(r)["round"] == r + 1
            assert snap.rank(r)["moves"] == 10 * (r + 1)
            assert snap.rank(r)["status"] == STATUS_DONE
    finally:
        plane.close(unlink=True)


def test_comm_live_defaults_to_null():
    def prog(comm):
        assert comm.live is NULL_LIVE
        return True

    assert run_spmd(prog, 2).results == [True, True]


def test_op_timeout_error_carries_rank_report():
    plane = LivePlane(2)

    def prog(comm):
        comm.live.update(level=1, round=3)
        if comm.rank == 0:
            comm.recv(1)  # rank 1 never sends
        return comm.rank

    with pytest.raises(DeadlockError) as ei:
        run_spmd(prog, 2, live=plane, timeout=10.0, op_timeout=1.0)
    msg = str(ei.value)
    report = ei.value.rank_report
    assert len(report) == 2
    assert report[0]["status"] == "failed"
    assert report[1]["status"] == "done"
    assert report[0]["round"] == 3
    assert "rank 0: failed" in msg
    assert "round=3" in msg


def test_watchdog_names_stalled_rank():
    """Regression: a rank stuck outside any comm op past the job
    timeout is named 'stalled' with its live phase/round and a real
    heartbeat age — not drowned in a global timeout message."""
    plane = LivePlane(2)

    def prog(comm):
        comm.live.update(level=1, round=9)
        if comm.rank == 1:
            time.sleep(8.0)  # outlives timeout + the unwind grace
        return comm.rank

    with pytest.raises(DeadlockError) as ei:
        run_spmd(prog, 2, live=plane, timeout=0.5, op_timeout=0.5)
    msg = str(ei.value)
    assert "rank 1: stalled" in msg
    entry = ei.value.rank_report[1]
    assert entry["status"] == "stalled"
    assert entry["round"] == 9
    assert entry["heartbeat_age"] is not None
    assert entry["heartbeat_age"] > 0.4  # genuinely stale, not restamped


def test_watchdog_report_without_live_plane_names_phase():
    def prog(comm):
        comm.set_phase("swap_boundary_info")
        if comm.rank == 0:
            comm.recv(1)
        return comm.rank

    with pytest.raises(DeadlockError) as ei:
        run_spmd(prog, 2, timeout=10.0, op_timeout=1.0)
    assert ei.value.rank_report
    assert ei.value.rank_report[0]["phase"] == "swap_boundary_info"
    assert "heartbeat" not in str(ei.value)


# ---------------------------------------------------------------------------
# discovery, snapshots, renderings
# ---------------------------------------------------------------------------

class TestDiscovery:
    def test_publish_attach_roundtrip(self):
        plane = LivePlane(2, shared=True)
        try:
            rid = plane.publish(command="test")
            assert rid == plane.run_id
            meta = json.loads(
                (live_run_dir(rid) / "meta.json").read_text()
            )
            assert meta["segment"] == plane.segment_name
            assert meta["nranks"] == 2
            assert meta["pid"] == os.getpid()
            assert meta["fields"] == list(LIVE_FIELDS)
            assert meta["command"] == "test"

            plane.for_rank(1).update(round=4, codelength=2.5)
            snap = LiveSnapshot.attach(rid)
            assert snap.rank(1)["round"] == 4
            assert snap.rank(1)["codelength"] == 2.5
            assert snap.meta["pid"] == os.getpid()
            assert any(m["run_id"] == rid for m in list_live_runs())
        finally:
            plane.close(unlink=True)
        # Fully reaped: no sidecar, no segment, not listed.
        assert not live_run_dir(rid).exists()
        assert all(m["run_id"] != rid for m in list_live_runs())
        with pytest.raises(FileNotFoundError, match=rid):
            LiveSnapshot.attach(rid)

    def test_attach_latest_picks_newest(self):
        a = LivePlane(1, shared=True, run_id="live-test-older")
        b = LivePlane(1, shared=True, run_id="live-test-newer")
        try:
            a.publish()
            b.publish(started=time.time() + 60.0)
            assert LiveSnapshot.attach_latest().run_id == b.run_id
        finally:
            a.close(unlink=True)
            b.close(unlink=True)

    def test_attach_unknown_run_raises(self):
        with pytest.raises(FileNotFoundError, match="no live run"):
            LiveSnapshot.attach("no-such-run-id")

    def test_gc_reaps_dead_owner_and_keeps_live_one(self):
        alive = LivePlane(1, shared=True, run_id="live-test-alive")
        dead = LivePlane(1, shared=True, run_id="live-test-dead")
        try:
            alive.publish()  # pid = this process -> kept
            dead.publish()
            # Forge a dead owner: pick a pid that cannot be running.
            meta_path = live_run_dir(dead.run_id) / "meta.json"
            meta = json.loads(meta_path.read_text())
            meta["pid"] = 2 ** 22 + 1  # beyond default pid_max
            meta_path.write_text(json.dumps(meta))

            removed = gc_stale_runs()
            assert dead.run_id in removed
            assert alive.run_id not in removed
            assert not live_run_dir(dead.run_id).exists()
            # The dead run's segment is unlinked too.
            with pytest.raises(FileNotFoundError):
                from repro.obs.live import _attach_segment

                _attach_segment(meta["segment"])
        finally:
            alive.close(unlink=True)
            dead.close(unlink=True)

    def test_snapshot_render_and_totals(self):
        plane = LivePlane(2)
        plane.for_rank(0).update(
            phase="find_best_module", level=1, round=2,
            moves=10, codelength=3.5, edges_scanned=100,
        )
        plane.for_rank(1).update(
            phase="find_best_module", level=1, round=2,
            moves=10, codelength=3.5, edges_scanned=300,
        )
        snap = LiveSnapshot.from_plane(plane)
        out = snap.render()
        assert "find_best_module" in out
        assert "moves=10" in out  # replicated counter: max, not sum
        assert "edges=400" in out  # per-rank counter: summed
        assert snap.skew() == pytest.approx(1.5)

        # Throughput column appears only with a prev snapshot.
        prev = LiveSnapshot(snap.run_id, snap.rows.copy(),
                            taken_at=snap.taken_at - 2.0)
        prev.rows[:, :] = 0.0
        with_prev = snap.render(prev)
        assert "edges/s" in with_prev and "edges/s" not in out

    def test_prometheus_exposition(self):
        plane = LivePlane(2, run_id="prom-test")
        plane.for_rank(0).update(moves=5, codelength=2.25)
        prom = LiveSnapshot.from_plane(plane).to_prometheus()
        assert "# TYPE repro_live_moves counter" in prom
        assert "# TYPE repro_live_codelength gauge" in prom
        assert 'repro_live_moves{run_id="prom-test",rank="0"} 5.0' in prom
        assert 'rank="1"' in prom
        assert prom.endswith("\n")
        # Every line is value-parseable (no numpy reprs leaked).
        for line in prom.strip().splitlines():
            if not line.startswith("#"):
                float(line.rsplit(" ", 1)[1])
