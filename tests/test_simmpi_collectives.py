"""Collective operations: correctness against their definitions."""

import numpy as np
import pytest

from repro.simmpi import (
    AbortError,
    CollectiveMismatchError,
    SerialCommunicator,
    resolve_op,
    run_spmd,
)


@pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
def test_allreduce_sum(p):
    res = run_spmd(lambda c: c.allreduce(c.rank + 1), p)
    assert res.results == [p * (p + 1) // 2] * p


@pytest.mark.parametrize("op,expected", [("min", 0), ("max", 4), ("prod", 0)])
def test_allreduce_named_ops(op, expected):
    res = run_spmd(lambda c: c.allreduce(c.rank, op=op), 5)
    assert res.results == [expected] * 5


def test_allreduce_callable_op():
    res = run_spmd(lambda c: c.allreduce([c.rank], op=lambda a, b: a + b), 3)
    assert res.results == [[0, 1, 2]] * 3


def test_allreduce_numpy_elementwise():
    def prog(comm):
        return comm.allreduce(np.array([comm.rank, 2 * comm.rank]))

    res = run_spmd(prog, 4)
    for out in res.results:
        np.testing.assert_array_equal(out, [6, 12])


@pytest.mark.parametrize("root", [0, 2])
def test_bcast(root):
    def prog(comm):
        return comm.bcast("payload" if comm.rank == root else None, root=root)

    res = run_spmd(prog, 3)
    assert res.results == ["payload"] * 3


def test_gather_only_root_receives():
    def prog(comm):
        return comm.gather(comm.rank ** 2, root=1)

    res = run_spmd(prog, 4)
    assert res.results[1] == [0, 1, 4, 9]
    assert res.results[0] is None and res.results[2] is None


def test_allgather():
    res = run_spmd(lambda c: c.allgather(chr(ord("a") + c.rank)), 4)
    assert res.results == [["a", "b", "c", "d"]] * 4


def test_scatter():
    def prog(comm):
        objs = [i * 100 for i in range(comm.size)] if comm.rank == 0 else None
        return comm.scatter(objs, root=0)

    res = run_spmd(prog, 4)
    assert res.results == [0, 100, 200, 300]


def test_scatter_wrong_length_raises():
    def prog(comm):
        objs = [1] if comm.rank == 0 else None
        return comm.scatter(objs, root=0)

    with pytest.raises((ValueError, AbortError)):
        run_spmd(prog, 3)


def test_reduce_on_root_only():
    def prog(comm):
        return comm.reduce(comm.rank + 1, op="sum", root=2)

    res = run_spmd(prog, 4)
    assert res.results[2] == 10
    assert res.results[0] is None


def test_alltoall_personalized():
    def prog(comm):
        out = [f"{comm.rank}->{j}" for j in range(comm.size)]
        return comm.alltoall(out)

    res = run_spmd(prog, 3)
    for i, got in enumerate(res.results):
        assert got == [f"{j}->{i}" for j in range(3)]


def test_alltoall_with_none_holes():
    def prog(comm):
        out = [None] * comm.size
        out[(comm.rank + 1) % comm.size] = comm.rank
        return comm.alltoall(out)

    res = run_spmd(prog, 4)
    for i, got in enumerate(res.results):
        src = (i - 1) % 4
        expected = [None] * 4
        expected[src] = src
        assert got == expected


def test_exchange_sparse():
    def prog(comm):
        msgs = {}
        if comm.rank == 0:
            msgs = {1: "zero-to-one", 2: "zero-to-two"}
        return comm.exchange(msgs)

    res = run_spmd(prog, 3)
    assert res.results[0] == {}
    assert res.results[1] == {0: "zero-to-one"}
    assert res.results[2] == {0: "zero-to-two"}


def test_exchange_rejects_self_send():
    def prog(comm):
        return comm.exchange({comm.rank: "self"})

    with pytest.raises((ValueError, AbortError)):
        run_spmd(prog, 2)


def test_barrier_many_iterations():
    def prog(comm):
        acc = 0
        for i in range(25):
            comm.barrier()
            acc += i
        return acc

    res = run_spmd(prog, 4)
    assert res.results == [sum(range(25))] * 4


def test_collective_mismatch_detected():
    def prog(comm):
        if comm.rank == 0:
            comm.bcast("x", root=0)
        else:
            comm.allgather("y")

    with pytest.raises((CollectiveMismatchError, AbortError)):
        run_spmd(prog, 2)


def test_error_in_one_rank_propagates():
    def prog(comm):
        if comm.rank == 1:
            raise KeyError("rank 1 failed")
        comm.barrier()
        comm.allreduce(1)
        return "ok"

    with pytest.raises(KeyError):
        run_spmd(prog, 4)


def test_resolve_op_rejects_unknown():
    with pytest.raises(ValueError):
        resolve_op("xor-ish")


def test_serial_collectives_identity():
    c = SerialCommunicator()
    assert c.bcast("v") == "v"
    assert c.allgather(3) == [3]
    assert c.allreduce(5) == 5
    assert c.gather(1) == [1]
    assert c.scatter([7]) == 7
    assert c.reduce(9) == 9
    assert c.alltoall(["z"]) == ["z"]
    c.barrier()
    assert c.stats.barrier_calls == 1


def test_interleaved_collectives_and_p2p():
    """Stress: mixed schedule must not deadlock or cross-match."""

    def prog(comm):
        total = 0
        for i in range(10):
            nxt = (comm.rank + 1) % comm.size
            comm.send(i * comm.rank, nxt, tag=i)
            total += comm.allreduce(1)
            got = comm.recv(tag=i)
            total += got
            comm.barrier()
        return total

    res = run_spmd(prog, 4)
    assert len(set(r is not None for r in res.results)) == 1
