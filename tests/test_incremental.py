"""Incremental warm-start re-solve: oracle, no-op invariant, repair.

The contract under test (ISSUE 8):

* **Oracle** — for any delta batch, the warm re-solve's codelength
  matches a cold solve of the post-delta graph to 1e-9 relative, for
  both solvers.
* **No-op invariant** — seeding a solver with its own converged
  partition and an empty delta terminates after one sweep/round with
  zero moves and the identical codelength.
* **O(changed region)** — the warm solve's edge-scan work counters are
  strictly below the cold solve's (the benchmark guards the 5x floor;
  here we pin the mechanism).
* **View repair** — `repair_local_views` leaves every field of every
  rank view bitwise equal to a fresh `local_views_1d` build on the
  patched graph, and warm distributed runs are bitwise identical
  across the threads and procs backends.
"""

import numpy as np
import pytest

from repro import (
    IncrementalSession,
    InfomapConfig,
    distributed_infomap,
    sequential_infomap,
    warm_distributed_infomap,
)
from repro.core.flow import FlowNetwork
from repro.core.incremental import warm_seed_membership
from repro.graph import GraphDelta, apply_delta, dirty_region, planted_partition
from repro.partition import OneDPartition, local_views_1d, repair_local_views
from repro.partition.distgraph import local_views_delegate
from repro.partition.delegates import delegate_partition


REL_TOL = 1e-9


def _graph(seed=5, communities=8, size=25):
    return planted_partition(communities, size, 0.3, 0.01, seed=seed).graph


def _mixed_delta(graph, rng, n_del=3, n_ins=3, n_rew=2):
    """A delta with deletes, inserts and reweights drawn from *graph*."""
    rows = graph._row_of_entry()
    mask = rows < graph.indices
    eu, ev = rows[mask], graph.indices[mask]
    pick = rng.choice(eu.size, n_del + n_rew, replace=False)
    del_idx, rew_idx = pick[:n_del], pick[n_del:]
    present = set(zip(eu.tolist(), ev.tolist()))
    n = graph.num_vertices
    ins = []
    while len(ins) < n_ins:
        a, b = sorted(rng.integers(0, n, 2).tolist())
        if a != b and (a, b) not in present and (a, b) not in ins:
            ins.append((a, b))
    return GraphDelta.build(
        insert=(
            np.array([e[0] for e in ins]),
            np.array([e[1] for e in ins]),
            np.full(n_ins, 1.5),
        ),
        delete=(eu[del_idx], ev[del_idx]),
        reweight=(eu[rew_idx], ev[rew_idx], np.full(n_rew, 0.5)),
    )


def _rel_err(a, b):
    return abs(a - b) / max(abs(a), abs(b), 1e-300)


def _assert_no_worse(warm_len, cold_len):
    """Warm quality oracle for accumulated-delta runs.

    Both solves are greedy, so after several batches they can land in
    *different* local optima — in practice the warm start (which keeps
    the converged structure outside the dirty region) lands in an
    equal or better one.  The one-sided bound is the real contract:
    incremental must never degrade quality relative to a full re-solve.
    """
    assert warm_len <= cold_len + REL_TOL * abs(cold_len), (
        f"warm {warm_len} worse than cold {cold_len}"
    )


# ---------------------------------------------------------------------------
# warm_seed_membership
# ---------------------------------------------------------------------------

class TestWarmSeed:
    def test_clean_modules_keep_grouping(self):
        cached = np.array([0, 0, 1, 1, 2, 2], dtype=np.int64)
        dirty = np.array([False, False, True, False, False, False])
        seed = warm_seed_membership(cached, dirty)
        # Clean co-members stay together; module labels are min clean ids.
        assert seed[0] == seed[1] == 0
        assert seed[3] == 3  # module 1's only clean member
        assert seed[4] == seed[5] == 4
        assert seed[2] == 2  # dirty singleton keeps its vertex id

    def test_dirty_singletons_do_not_collide(self):
        cached = np.array([0, 0, 0, 1, 1], dtype=np.int64)
        dirty = np.array([True, False, False, True, False])
        seed = warm_seed_membership(cached, dirty)
        assert seed[0] == 0 and seed[3] == 3
        assert seed[1] == seed[2] == 1
        assert seed[4] == 4
        assert len({seed[0], seed[1], seed[3], seed[4]}) == 4

    def test_keep_cached_modules(self):
        cached = np.array([0, 1, 0, 1], dtype=np.int64)
        dirty = np.array([True, True, False, False])
        seed = warm_seed_membership(cached, dirty, reseed_singletons=False)
        assert seed[0] == seed[2] == 0
        assert seed[1] == seed[3] == 1

    def test_labels_in_vertex_id_space(self):
        rng = np.random.default_rng(0)
        cached = rng.integers(0, 10, 50).astype(np.int64)
        dirty = rng.random(50) < 0.3
        seed = warm_seed_membership(cached, dirty)
        assert seed.min() >= 0 and seed.max() < 50

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="dirty mask"):
            warm_seed_membership(np.zeros(4, np.int64), np.zeros(3, bool))


# ---------------------------------------------------------------------------
# Sequential warm start
# ---------------------------------------------------------------------------

class TestSequentialWarm:
    def test_oracle_mixed_delta(self):
        g = _graph()
        cfg = InfomapConfig(seed=11)
        session = IncrementalSession(g, cfg)
        session.solve()
        delta = _mixed_delta(g, np.random.default_rng(0))
        warm = session.update(delta)
        cold = sequential_infomap(session.graph, cfg)
        assert _rel_err(warm.codelength, cold.codelength) < REL_TOL

    def test_oracle_multi_batch(self):
        g = _graph(seed=7)
        cfg = InfomapConfig(seed=3)
        session = IncrementalSession(g, cfg)
        session.solve()
        rng = np.random.default_rng(42)
        for _ in range(4):
            delta = _mixed_delta(session.graph, rng)
            warm = session.update(delta)
            cold = sequential_infomap(session.graph, cfg)
            _assert_no_worse(warm.codelength, cold.codelength)

    def test_noop_invariant(self):
        g = _graph()
        cfg = InfomapConfig(seed=11)
        session = IncrementalSession(g, cfg)
        base = session.solve()
        res = session.update(GraphDelta.empty())
        assert res.codelength == base.codelength
        assert res.converged
        # One level, one sweep, zero moves, zero swept work.
        assert len(res.levels) == 1
        assert res.levels[0].sweeps == 1
        assert res.levels[0].moves == 0
        ev = session.events[-1]
        assert ev["work"]["vertices_swept"] == 0
        assert ev["work"]["edges_scanned"] == 0

    def test_warm_work_below_cold(self):
        g = _graph()
        cfg = InfomapConfig(seed=11)
        session = IncrementalSession(g, cfg)
        session.solve()
        delta = _mixed_delta(g, np.random.default_rng(1))
        session.update(delta)
        warm_work = session.events[-1]["work"]
        cold_work: dict = {}
        sequential_infomap(session.graph, cfg, work=cold_work)
        assert 0 < warm_work["edges_scanned"] < cold_work["edges_scanned"]
        assert 0 < warm_work["vertices_swept"] < cold_work["vertices_swept"]

    def test_work_counters_do_not_perturb(self):
        # The cold path with counters attached is byte-identical to
        # the cold path without them.
        g = _graph(seed=2)
        cfg = InfomapConfig(seed=5)
        plain = sequential_infomap(g, cfg)
        counted = sequential_infomap(g, cfg, work={})
        assert plain.codelength == counted.codelength
        assert np.array_equal(plain.membership, counted.membership)

    def test_update_before_solve_raises(self):
        session = IncrementalSession(_graph())
        with pytest.raises(RuntimeError, match="solve"):
            session.update(GraphDelta.empty())

    def test_vertex_growth_rejected(self):
        g = _graph()
        session = IncrementalSession(g)
        session.solve()
        n = g.num_vertices
        delta = GraphDelta.build(
            insert=(np.array([0]), np.array([n + 3]), np.array([1.0]))
        )
        with pytest.raises(ValueError, match="cold solve"):
            session.update(delta)


# ---------------------------------------------------------------------------
# Distributed warm start
# ---------------------------------------------------------------------------

class TestDistributedWarm:
    def test_oracle_mixed_delta(self):
        g = _graph()
        cfg = InfomapConfig(seed=11)
        session = IncrementalSession(g, cfg, nranks=4)
        session.solve()
        delta = _mixed_delta(g, np.random.default_rng(0))
        warm = session.update(delta)
        cold = distributed_infomap(session.graph, 4, cfg)
        assert _rel_err(warm.codelength, cold.codelength) < REL_TOL

    def test_oracle_repaired_views_multi_batch(self):
        # Batch 2+ exercises repair_local_views (batch 1 builds views).
        g = _graph(seed=7)
        cfg = InfomapConfig(seed=3)
        session = IncrementalSession(g, cfg, nranks=3)
        session.solve()
        rng = np.random.default_rng(42)
        for i in range(3):
            delta = _mixed_delta(session.graph, rng)
            warm = session.update(delta)
            cold = distributed_infomap(session.graph, 3, cfg)
            _assert_no_worse(warm.codelength, cold.codelength)
            if i > 0:
                assert session.events[-1]["repair"] is not None

    def test_noop_invariant(self):
        g = _graph()
        cfg = InfomapConfig(seed=11)
        session = IncrementalSession(g, cfg, nranks=4)
        base = session.solve()
        res = session.update(GraphDelta.empty())
        assert _rel_err(res.codelength, base.codelength) < 1e-12
        assert res.converged
        # One stage-1 round finds zero moves and stage 2 is skipped.
        assert res.extras["stage1_rounds"] == 1
        assert len(res.levels) == 1
        assert res.levels[0].moves == 0

    def test_threads_procs_bitwise(self):
        g = _graph(seed=4, communities=6, size=20)
        cfg = InfomapConfig(seed=9)
        cold = distributed_infomap(g, 3, cfg)
        delta = _mixed_delta(g, np.random.default_rng(8))
        patched = apply_delta(g, delta)
        dirty = dirty_region(patched, delta, hops=1)
        seed = warm_seed_membership(cold.membership, dirty)
        out = {}
        for backend in ("threads", "procs"):
            out[backend] = warm_distributed_infomap(
                patched, 3, cfg,
                seed_membership=seed, active=dirty, backend=backend,
            )
        assert out["threads"].codelength == out["procs"].codelength
        assert np.array_equal(
            out["threads"].membership, out["procs"].membership
        )
        assert (
            out["threads"].extras["codelength_history"]
            == out["procs"].extras["codelength_history"]
        )

    def test_warm_work_below_cold(self):
        g = _graph()
        cfg = InfomapConfig(seed=11)
        session = IncrementalSession(g, cfg, nranks=4)
        session.solve()
        delta = _mixed_delta(g, np.random.default_rng(1))
        session.update(delta)
        warm_work = session.events[-1]["work"]["total_work_max"]
        cold = distributed_infomap(session.graph, 4, cfg)
        assert 0 < warm_work < cold.extras["total_work_max"]

    def test_seed_shape_validated(self):
        g = _graph()
        with pytest.raises(ValueError, match="seed_membership"):
            warm_distributed_infomap(
                g, 2, seed_membership=np.zeros(3, np.int64)
            )


# ---------------------------------------------------------------------------
# View repair
# ---------------------------------------------------------------------------

def _assert_views_equal(repaired, fresh):
    assert len(repaired) == len(fresh)
    scalar = ("rank", "nranks", "num_owned", "num_hubs", "num_ghosts")
    arrays = (
        "global_of", "flow", "exit0", "indptr", "nbr", "nbr_flow",
        "hub_home", "ghost_owner", "boundary_local", "neighbor_ranks",
    )
    for a, b in zip(repaired, fresh):
        for f in scalar:
            assert getattr(a, f) == getattr(b, f), f
        for f in arrays:
            x, y = getattr(a, f), getattr(b, f)
            assert x.dtype == y.dtype, f
            assert x.tobytes() == y.tobytes(), f
        assert len(a.boundary_ranks) == len(b.boundary_ranks)
        for x, y in zip(a.boundary_ranks, b.boundary_ranks):
            assert x.tobytes() == y.tobytes()


class TestRepairLocalViews:
    @pytest.mark.parametrize("nranks", [2, 4])
    def test_bitwise_equals_fresh_build(self, nranks):
        g = _graph(seed=3, communities=5, size=15)
        n = g.num_vertices
        part = OneDPartition.round_robin(n, nranks)
        views = local_views_1d(FlowNetwork.from_graph(g), part)
        delta = _mixed_delta(g, np.random.default_rng(17), 4, 4, 3)
        patched = apply_delta(g, delta)
        net = FlowNetwork.from_graph(patched)
        repair_local_views(views, patched, delta, part, network=net)
        _assert_views_equal(views, local_views_1d(net, part))

    def test_repeated_repairs_stay_exact(self):
        g = _graph(seed=9, communities=4, size=12)
        n = g.num_vertices
        part = OneDPartition.round_robin(n, 3)
        views = local_views_1d(FlowNetwork.from_graph(g), part)
        rng = np.random.default_rng(5)
        for _ in range(4):
            delta = _mixed_delta(g, rng, 2, 2, 1)
            g = apply_delta(g, delta)
            net = FlowNetwork.from_graph(g)
            repair_local_views(views, g, delta, part, network=net)
            _assert_views_equal(views, local_views_1d(net, part))

    def test_reweight_only_refreshes_flows(self):
        g = _graph(seed=1, communities=4, size=12)
        part = OneDPartition.round_robin(g.num_vertices, 2)
        views = local_views_1d(FlowNetwork.from_graph(g), part)
        delta = _mixed_delta(g, np.random.default_rng(2), 0, 0, 4)
        patched = apply_delta(g, delta)
        net = FlowNetwork.from_graph(patched)
        stats = repair_local_views(views, patched, delta, part, network=net)
        assert stats["ranks_touched"] == []
        _assert_views_equal(views, local_views_1d(net, part))

    def test_delegate_views_rejected(self):
        g = _graph(seed=1, communities=4, size=12)
        net = FlowNetwork.from_graph(g)
        dpart = delegate_partition(g, 2, d_high=8)
        views = local_views_delegate(net, dpart)
        part = OneDPartition.round_robin(g.num_vertices, 2)
        if not any(v.num_hubs for v in views):
            pytest.skip("no hubs at this scale")
        with pytest.raises(ValueError, match="delegate-free"):
            repair_local_views(views, g, GraphDelta.empty(), part)


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------

class TestDeltaObservability:
    def test_tracer_records_delta_instants(self):
        from repro.obs import Tracer, delta_rows

        g = _graph(seed=2, communities=4, size=15)
        tracer = Tracer()
        session = IncrementalSession(g, InfomapConfig(seed=7), tracer=tracer)
        session.solve()
        rng = np.random.default_rng(3)
        session.update(_mixed_delta(g, rng, 1, 1, 1))
        session.update(_mixed_delta(session.graph, rng, 1, 1, 1))
        rows = delta_rows(tracer.merged_events())
        assert [r["batch"] for r in rows] == [1, 2]
        assert all(r["insert"] == 1 and r["delete"] == 1 for r in rows)
        assert all(r["dirty_vertices"] > 0 for r in rows)

    def test_session_events_record_work_and_repair(self):
        g = _graph(seed=2, communities=4, size=15)
        session = IncrementalSession(g, InfomapConfig(seed=7))
        session.solve()
        session.update(_mixed_delta(g, np.random.default_rng(3)))
        ev = session.events[-1]
        assert ev["batch"] == 1
        assert ev["insert"] == 3 and ev["delete"] == 3
        assert ev["work"]["edges_scanned"] > 0
        assert ev["repair"] is None  # sequential: no views to repair


# ---------------------------------------------------------------------------
# CLI-facing session resume
# ---------------------------------------------------------------------------

class TestFromMembership:
    def test_seeded_session_matches_solved_session(self):
        g = _graph(seed=6)
        cfg = InfomapConfig(seed=13)
        solved = IncrementalSession(g, cfg)
        base = solved.solve()
        resumed = IncrementalSession.from_membership(
            g, base.membership, cfg
        )
        assert _rel_err(resumed.result.codelength, base.codelength) < 1e-12
        delta = _mixed_delta(g, np.random.default_rng(4))
        a = solved.update(delta)
        b = resumed.update(delta)
        assert a.codelength == b.codelength
        assert np.array_equal(a.membership, b.membership)

    def test_bad_shape_rejected(self):
        g = _graph(seed=6)
        with pytest.raises(ValueError, match="membership"):
            IncrementalSession.from_membership(g, np.zeros(3, np.int64))
