"""GraphDelta batches and the in-place CSR patch paths.

The load-bearing invariant: applying a delta — in RAM or on disk —
must be *bitwise identical* to rebuilding the graph with
``from_edge_array`` from the patched edge list.  The hypothesis
property test drives random insert/delete/reweight mixes through both
paths.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    GraphDelta,
    Graph,
    apply_delta,
    apply_delta_to_store,
    dirty_region,
    erdos_renyi,
    from_edge_array,
    graph_to_store,
    open_csr_store,
    read_delta_file,
    ring_of_cliques,
    store_header,
    write_delta_file,
)


def _patched_edge_list(graph, delta):
    """Reference semantics: edit the (u<=v) edge list in plain Python."""
    src, dst, w = graph.edge_array()
    edges = {
        (int(u), int(v)): float(x) for u, v, x in zip(src, dst, w)
    }
    for i in range(len(delta)):
        key = (int(delta.src[i]), int(delta.dst[i]))
        op = int(delta.op[i])
        if op == GraphDelta.DELETE:
            del edges[key]
        else:
            edges[key] = float(delta.weight[i])
    if not edges:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    items = list(edges.items())
    us = np.array([k[0] for k, _ in items], dtype=np.int64)
    vs = np.array([k[1] for k, _ in items], dtype=np.int64)
    ws = np.array([x for _, x in items], dtype=np.float64)
    return us, vs, ws


def _assert_bitwise(a: Graph, b: Graph):
    assert np.asarray(a.indptr).tobytes() == np.asarray(b.indptr).tobytes()
    assert np.asarray(a.indices).tobytes() == np.asarray(b.indices).tobytes()
    assert np.asarray(a.weights).tobytes() == np.asarray(b.weights).tobytes()
    assert a.num_self_loops == b.num_self_loops
    assert a.sorted_rows and b.sorted_rows


class TestGraphDelta:
    def test_canonical_orientation(self):
        d = GraphDelta.build(insert=([5, 1], [2, 4], [1.0, 2.0]))
        assert d.src.tolist() == [2, 1]
        assert d.dst.tolist() == [5, 4]

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError, match="self-loops"):
            GraphDelta.build(insert=([3], [3], [1.0]))

    def test_rejects_duplicates_across_orientation(self):
        with pytest.raises(ValueError, match="duplicate"):
            GraphDelta.build(
                insert=([1], [2], [1.0]), delete=([2], [1])
            )

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError, match="positive"):
            GraphDelta.build(insert=([0], [1], [0.0]))
        with pytest.raises(ValueError, match="finite"):
            GraphDelta.build(reweight=([0], [1], [np.inf]))

    def test_delete_weights_ignored(self):
        d = GraphDelta.build(delete=([0], [1]))
        assert d.weight.tolist() == [0.0]
        assert d.counts() == {"insert": 0, "delete": 1, "reweight": 0}

    def test_touched_and_len(self):
        d = GraphDelta.build(
            insert=([0], [9], [1.0]), reweight=([4], [2], [0.5])
        )
        assert len(d) == 2 and not d.is_empty
        assert d.touched_vertices().tolist() == [0, 2, 4, 9]
        assert d.num_structural == 1
        assert GraphDelta.empty().is_empty


class TestApplyDelta:
    def _graph(self, seed=0):
        return erdos_renyi(60, 0.1, seed=seed)

    def test_empty_delta_is_identity(self):
        g = self._graph()
        assert apply_delta(g, GraphDelta.empty()) is g

    def test_reweight_shares_structure(self):
        g = self._graph()
        u, v = int(g._row_of_entry()[0]), int(g.indices[0])
        d = GraphDelta.build(reweight=([u], [v], [7.5]))
        out = apply_delta(g, d)
        assert out.indices is g.indices and out.indptr is g.indptr
        assert out.edge_weight(u, v) == 7.5
        assert out.edge_weight(v, u) == 7.5

    def test_insert_existing_rejected(self):
        g = self._graph()
        u, v = int(g._row_of_entry()[0]), int(g.indices[0])
        with pytest.raises(ValueError, match="already present"):
            apply_delta(g, GraphDelta.build(insert=([u], [v], [1.0])))

    def test_delete_missing_rejected(self):
        g = self._graph()
        # (u, u+1) absent edge: find one
        for u in range(g.num_vertices - 1):
            if not g.has_edge(u, u + 1):
                break
        with pytest.raises(ValueError, match="not present"):
            apply_delta(g, GraphDelta.build(delete=([u], [u + 1])))

    def test_insert_grows_vertex_set(self):
        g = self._graph()
        n = g.num_vertices
        d = GraphDelta.build(insert=([0], [n + 1], [2.0]))
        out = apply_delta(g, d)
        assert out.num_vertices == n + 2
        assert out.edge_weight(0, n + 1) == 2.0
        assert out.degree(n) == 0
        out.validate()

    def test_mixed_matches_rebuild(self):
        g = self._graph(3)
        src, dst, w = g.edge_array()
        d = GraphDelta.build(
            insert=([src[0]], [g.num_vertices - 1], [1.5])
            if not g.has_edge(int(src[0]), g.num_vertices - 1)
            else None,
            delete=([src[1]], [dst[1]]),
            reweight=([src[2]], [dst[2]], [9.0]),
        )
        out = apply_delta(g, d)
        pu, pv, pw = _patched_edge_list(g, d)
        ref = from_edge_array(pu, pv, pw, num_vertices=out.num_vertices)
        _assert_bitwise(out, ref)


class TestDirtyRegion:
    def test_one_hop(self):
        g = ring_of_cliques(4, 5).graph
        d = GraphDelta.build(delete=([0], [int(g.neighbors(0)[0])]))
        patched = apply_delta(g, d)
        mask = dirty_region(patched, d, hops=1)
        seeds = d.touched_vertices()
        assert mask[seeds].all()
        expect = set(seeds.tolist())
        for s in seeds:
            expect.update(patched.neighbors(int(s)).tolist())
        assert set(np.flatnonzero(mask).tolist()) == expect

    def test_zero_hops_and_empty(self):
        g = ring_of_cliques(3, 4).graph
        assert not dirty_region(g, GraphDelta.empty()).any()
        d = GraphDelta.build(reweight=([0], [int(g.neighbors(0)[0])], [2.0]))
        mask = dirty_region(g, d, hops=0)
        assert sorted(np.flatnonzero(mask).tolist()) \
            == d.touched_vertices().tolist()


class TestDeltaFile:
    def test_round_trip(self, tmp_path):
        d = GraphDelta.build(
            insert=([0, 2], [5, 7], [1.0, 0.25]),
            delete=([1], [3]),
            reweight=([4], [6], [2.5]),
        )
        path = tmp_path / "d.txt"
        write_delta_file(path, d)
        back = read_delta_file(path)
        assert back.src.tolist() == d.src.tolist()
        assert back.dst.tolist() == d.dst.tolist()
        assert back.op.tolist() == d.op.tolist()
        assert back.weight.tolist() == d.weight.tolist()

    def test_default_insert_weight_and_comments(self, tmp_path):
        path = tmp_path / "d.txt"
        path.write_text("# header\n\n+ 3 4\n- 1 2\n")
        d = read_delta_file(path)
        assert d.weight[0] == 1.0
        assert d.counts() == {"insert": 1, "delete": 1, "reweight": 0}

    def test_bad_line_located(self, tmp_path):
        path = tmp_path / "d.txt"
        path.write_text("+ 1 2\n* 3 4\n")
        with pytest.raises(ValueError, match=r"d.txt:2"):
            read_delta_file(path)


class TestStoreDelta:
    def test_reweight_in_place(self, tmp_path):
        g = erdos_renyi(40, 0.15, seed=1)
        graph_to_store(g, tmp_path / "s")
        u, v = int(g._row_of_entry()[0]), int(g.indices[0])
        d = GraphDelta.build(reweight=([u], [v], [3.25]))
        header = apply_delta_to_store(tmp_path / "s", d)
        ref = apply_delta(g, d)
        back = open_csr_store(tmp_path / "s")
        _assert_bitwise(back, ref)
        assert header["total_weight"] == float(ref.total_weight)

    def test_structural_matches_rebuild(self, tmp_path):
        g = erdos_renyi(50, 0.12, seed=2)
        graph_to_store(g, tmp_path / "s")
        src, dst, _ = g.edge_array()
        ins = ([0], [g.num_vertices + 2], [4.0])
        d = GraphDelta.build(insert=ins, delete=([src[0]], [dst[0]]))
        header = apply_delta_to_store(tmp_path / "s", d, block_entries=64)
        ref = apply_delta(g, d)
        back = open_csr_store(tmp_path / "s")
        _assert_bitwise(back, ref)
        assert header["num_vertices"] == ref.num_vertices
        assert header["nnz"] == ref.nnz
        # Header matches graph_to_store of the rebuilt graph exactly.
        graph_to_store(ref, tmp_path / "ref")
        want = json.loads((tmp_path / "ref" / "header.json").read_text())
        got = store_header(tmp_path / "s")
        assert got == want

    def test_presence_errors(self, tmp_path):
        g = erdos_renyi(30, 0.2, seed=3)
        graph_to_store(g, tmp_path / "s")
        u, v = int(g._row_of_entry()[0]), int(g.indices[0])
        with pytest.raises(ValueError, match="already present"):
            apply_delta_to_store(
                tmp_path / "s", GraphDelta.build(insert=([u], [v], [1.0]))
            )


@st.composite
def _graph_and_delta(draw):
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    n = draw(st.integers(6, 40))
    p = draw(st.floats(0.05, 0.4))
    g = erdos_renyi(n, p, seed=seed)
    src, dst, w = g.edge_array()
    m = src.size

    n_del = draw(st.integers(0, min(4, m)))
    n_rew = draw(st.integers(0, min(4, max(0, m - n_del))))
    pick = rng.permutation(m)[: n_del + n_rew] if m else np.empty(0, int)
    del_idx, rew_idx = pick[:n_del], pick[n_del:]

    # Candidate inserts: absent (u, v) pairs, possibly growing n.
    n_ins = draw(st.integers(0, 4))
    ins_u, ins_v, ins_w = [], [], []
    seen = {(int(a), int(b)) for a, b in zip(src, dst)}
    # Deleted edges are legal insert targets too, but keep it simple:
    # exclude anything currently present or already chosen.
    tries = 0
    hi = n + draw(st.integers(0, 3))
    while len(ins_u) < n_ins and tries < 50:
        tries += 1
        a, b = int(rng.integers(0, hi)), int(rng.integers(0, hi))
        a, b = min(a, b), max(a, b)
        if a == b or (a, b) in seen:
            continue
        seen.add((a, b))
        ins_u.append(a)
        ins_v.append(b)
        ins_w.append(float(rng.uniform(0.1, 5.0)))

    delta = GraphDelta.build(
        insert=(ins_u, ins_v, ins_w) if ins_u else None,
        delete=(src[del_idx], dst[del_idx]) if n_del else None,
        reweight=(
            src[rew_idx],
            dst[rew_idx],
            rng.uniform(0.1, 5.0, size=rew_idx.size),
        )
        if n_rew
        else None,
    )
    return g, delta


@settings(max_examples=40, deadline=None)
@given(gd=_graph_and_delta())
def test_property_apply_matches_rebuild(gd):
    g, delta = gd
    out = apply_delta(g, delta)
    pu, pv, pw = _patched_edge_list(g, delta)
    ref = from_edge_array(pu, pv, pw, num_vertices=out.num_vertices)
    _assert_bitwise(out, ref)
    out.validate()


@settings(max_examples=12, deadline=None)
@given(gd=_graph_and_delta())
def test_property_store_matches_ram(gd, tmp_path_factory):
    g, delta = gd
    store = tmp_path_factory.mktemp("store")
    graph_to_store(g, store)
    apply_delta_to_store(store, delta, block_entries=97)
    ref = apply_delta(g, delta)
    back = open_csr_store(store)
    _assert_bitwise(back, ref)
    # Header is byte-comparable with graph_to_store of the rebuilt graph.
    ref_dir = tmp_path_factory.mktemp("ref")
    graph_to_store(ref, ref_dir)
    want = json.loads((ref_dir / "header.json").read_text())
    assert store_header(store) == want
