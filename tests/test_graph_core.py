"""Graph CSR structure, builder canonicalization, degree stats."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    degree_summary,
    from_adjacency,
    from_edge_array,
    from_edges,
    hub_edge_fraction,
    hub_vertices,
    powerlaw_mle,
    relabel_compact,
)


def triangle() -> Graph:
    return from_edges([(0, 1), (1, 2), (0, 2)])


class TestBuilder:
    def test_triangle_structure(self):
        g = triangle()
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.nnz == 6
        g.validate()

    def test_neighbors_sorted_views(self):
        g = triangle()
        np.testing.assert_array_equal(g.neighbors(0), [1, 2])
        np.testing.assert_array_equal(g.neighbors(1), [0, 2])

    def test_duplicate_edges_sum_weights(self):
        g = from_edges([(0, 1, 2.0), (1, 0, 3.0)])
        assert g.num_edges == 1
        assert g.edge_weight(0, 1) == pytest.approx(5.0)

    def test_duplicate_edges_first_policy(self):
        g = from_edges([(0, 1, 2.0), (1, 0, 3.0)], dedup="first")
        assert g.edge_weight(0, 1) == pytest.approx(2.0)

    def test_duplicate_edges_error_policy(self):
        with pytest.raises(ValueError):
            from_edges([(0, 1), (1, 0)], dedup="error")

    def test_self_loops_dropped_by_default(self):
        g = from_edges([(0, 0), (0, 1)])
        assert g.num_edges == 1
        assert g.num_self_loops == 0

    def test_self_loops_kept_when_requested(self):
        g = from_edges([(0, 0, 2.5), (0, 1, 1.0)], keep_self_loops=True)
        assert g.num_self_loops == 1
        assert g.num_edges == 2
        assert g.total_weight == pytest.approx(3.5)
        g.validate()

    def test_isolated_trailing_vertices(self):
        g = from_edges([(0, 1)], num_vertices=5)
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_num_vertices_too_small_rejected(self):
        with pytest.raises(ValueError):
            from_edges([(0, 5)], num_vertices=3)

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            from_edge_array(np.array([-1]), np.array([0]))

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ValueError):
            from_edges([(0, 1, 0.0)])
        with pytest.raises(ValueError):
            from_edges([(0, 1, -1.0)])

    def test_nonfinite_weights_rejected(self):
        with pytest.raises(ValueError):
            from_edges([(0, 1, float("nan"))])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            from_edge_array(np.array([0, 1]), np.array([1]))

    def test_empty_graph(self):
        g = from_edge_array(np.empty(0, np.int64), np.empty(0, np.int64),
                            num_vertices=4)
        assert g.num_vertices == 4 and g.num_edges == 0

    def test_from_adjacency(self):
        g = from_adjacency([[1, 2], [0], [0]])
        assert g.num_edges == 2
        g.validate()

    def test_relabel_compact(self):
        src = np.array([10, 30, 10])
        dst = np.array([30, 50, 50])
        ns, nd, orig = relabel_compact(src, dst)
        np.testing.assert_array_equal(orig, [10, 30, 50])
        np.testing.assert_array_equal(ns, [0, 1, 0])
        np.testing.assert_array_equal(nd, [1, 2, 2])


class TestGraphQueries:
    def test_total_weight_with_self_loop(self):
        g = from_edges([(0, 1, 1.0), (1, 1, 4.0)], keep_self_loops=True)
        assert g.total_weight == pytest.approx(5.0)

    def test_weighted_degrees_conventions(self):
        g = from_edges([(0, 1, 1.0), (1, 1, 4.0)], keep_self_loops=True)
        np.testing.assert_allclose(
            g.weighted_degrees(self_loop_factor=2.0), [1.0, 9.0]
        )
        np.testing.assert_allclose(
            g.weighted_degrees(self_loop_factor=1.0), [1.0, 5.0]
        )
        np.testing.assert_allclose(
            g.weighted_degrees(self_loop_factor=0.0), [1.0, 1.0]
        )

    def test_edges_yield_each_once(self):
        g = triangle()
        assert sorted(e[:2] for e in g.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_edge_array_matches_edges(self):
        g = from_edges([(0, 1, 2.0), (2, 3, 4.0), (1, 2, 1.0)])
        src, dst, w = g.edge_array()
        assert list(zip(src.tolist(), dst.tolist(), w.tolist())) == sorted(
            g.edges()
        )

    def test_has_edge_and_weight(self):
        g = triangle()
        assert g.has_edge(0, 1) and not g.has_edge(0, 0)
        assert g.edge_weight(0, 1) == 1.0
        assert g.edge_weight(0, 0) == 0.0

    def test_is_weighted(self):
        assert not triangle().is_weighted()
        assert from_edges([(0, 1, 2.0)]).is_weighted()

    def test_degrees_vectorized_matches_scalar(self):
        g = from_edges([(0, 1), (0, 2), (0, 3), (2, 3)])
        degs = g.degrees()
        assert [g.degree(u) for u in range(g.num_vertices)] == degs.tolist()

    def test_validate_catches_asymmetry(self):
        g = triangle()
        bad = Graph(
            indptr=g.indptr,
            indices=g.indices.copy(),
            weights=g.weights.copy(),
        )
        bad.weights[0] = 99.0  # only one direction changed
        with pytest.raises(ValueError):
            bad.validate()


class TestDegreeStats:
    def test_hub_vertices_threshold(self):
        g = from_edges([(0, i) for i in range(1, 8)] + [(1, 2)])
        hubs = hub_vertices(g, 3)
        np.testing.assert_array_equal(hubs, [0])
        assert hub_vertices(g, 100).size == 0

    def test_hub_edge_fraction(self):
        g = from_edges([(0, i) for i in range(1, 8)])
        frac = hub_edge_fraction(g, 3)
        assert frac == pytest.approx(7 / 14)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            hub_vertices(triangle(), -1)

    def test_powerlaw_mle_on_powerlaw(self):
        from repro.graph import powerlaw_configuration

        g = powerlaw_configuration(5000, exponent=2.5, seed=1)
        alpha = powerlaw_mle(g, kmin=3)
        assert 2.0 < alpha < 3.2

    def test_degree_summary_fields(self):
        s = degree_summary(triangle())
        assert s.min_degree == s.max_degree == 2
        assert s.mean_degree == pytest.approx(2.0)
        assert s.gini == pytest.approx(0.0)
        assert "n=3" in str(s)

    def test_gini_increases_with_hubs(self):
        from repro.graph import star

        assert degree_summary(star(50)).gini > 0.4
