"""External (on-disk, memory-mapped) CSR stores.

The two-pass builder must be *bitwise* equivalent to the in-memory
``from_edge_array`` — same canonicalization, same dedup combination
order, same row sort — so a store can stand in for an in-RAM graph
anywhere without perturbing a single float.
"""

import numpy as np
import pytest

from repro.core import InfomapConfig, distributed_infomap
from repro.graph import (
    build_csr_store,
    edgelist_to_store,
    from_edge_array,
    graph_to_store,
    load_dataset,
    metis_to_store,
    open_csr_store,
    powerlaw_planted_partition,
    read_edgelist,
    read_metis,
    store_header,
    write_edgelist,
    write_metis,
)
from repro.graph.io import EdgeChunk
from repro.obs import graph_fingerprint


def edges_for(num_edges, n, seed, weighted=True, loops=0.1):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=num_edges)
    dst = rng.integers(0, n, size=num_edges)
    loop = rng.random(num_edges) < loops
    dst[loop] = src[loop]
    w = rng.uniform(0.5, 2.0, size=num_edges) if weighted else None
    return src, dst, w


def chunked(src, dst, w, chunk):
    for lo in range(0, src.size, chunk):
        ws = None if w is None else w[lo:lo + chunk]
        yield EdgeChunk(src[lo:lo + chunk], dst[lo:lo + chunk], ws)


def csr_identical(a, b):
    assert a.num_vertices == b.num_vertices
    assert np.asarray(a.indptr).tobytes() == np.asarray(b.indptr).tobytes()
    assert np.asarray(a.indices).tobytes() == np.asarray(b.indices).tobytes()
    assert np.asarray(a.weights).tobytes() == np.asarray(b.weights).tobytes()


class TestBuilderBitwise:
    @pytest.mark.parametrize("dedup", ["sum", "first"])
    @pytest.mark.parametrize("keep_loops", [False, True])
    def test_matches_from_edge_array(self, tmp_path, dedup, keep_loops):
        src, dst, w = edges_for(5000, 300, seed=11)
        ref = from_edge_array(src, dst, w, dedup=dedup,
                              keep_self_loops=keep_loops)
        build_csr_store(
            chunked(src, dst, w, 613), tmp_path / "s",
            dedup=dedup, keep_self_loops=keep_loops, block_entries=777,
        )
        g = open_csr_store(tmp_path / "s")
        csr_identical(ref, g)
        assert g.is_memmapped
        assert g.num_edges == ref.num_edges
        assert g.total_weight == pytest.approx(ref.total_weight)

    def test_block_size_invariant(self, tmp_path):
        src, dst, w = edges_for(3000, 200, seed=3)
        ref = from_edge_array(src, dst, w)
        for i, be in enumerate((64, 1001, 1 << 20)):
            build_csr_store(chunked(src, dst, w, 250), tmp_path / str(i),
                            block_entries=be)
            csr_identical(ref, open_csr_store(tmp_path / str(i)))

    def test_unweighted(self, tmp_path):
        src, dst, _ = edges_for(2000, 150, seed=9, weighted=False)
        ref = from_edge_array(src, dst)
        build_csr_store(chunked(src, dst, None, 333), tmp_path / "s")
        csr_identical(ref, open_csr_store(tmp_path / "s"))

    def test_dedup_error_raises(self, tmp_path):
        src = np.array([0, 1, 1], dtype=np.int64)
        dst = np.array([1, 0, 2], dtype=np.int64)
        with pytest.raises(ValueError, match="parallel edges"):
            build_csr_store(chunked(src, dst, None, 2), tmp_path / "s",
                            dedup="error")

    def test_num_vertices_too_small(self, tmp_path):
        src = np.array([0, 5], dtype=np.int64)
        dst = np.array([1, 6], dtype=np.int64)
        with pytest.raises(ValueError, match="num_vertices smaller"):
            build_csr_store(chunked(src, dst, None, 10), tmp_path / "s",
                            num_vertices=4)

    def test_zero_edges(self, tmp_path):
        build_csr_store(iter(()), tmp_path / "s", num_vertices=5)
        g = open_csr_store(tmp_path / "s")
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.indices.size == 0


class TestStoreRoundtrip:
    def test_graph_to_store_roundtrip(self, tmp_path):
        g = powerlaw_planted_partition(300, 6, seed=2).graph
        graph_to_store(g, tmp_path / "s")
        g2 = open_csr_store(tmp_path / "s")
        csr_identical(g, g2)
        assert g2.is_memmapped and not g.is_memmapped
        assert g2.csr_nbytes == g.csr_nbytes

    def test_header_manifest(self, tmp_path):
        g = powerlaw_planted_partition(200, 5, seed=4).graph
        graph_to_store(g, tmp_path / "s")
        hdr = store_header(tmp_path / "s")
        assert hdr["format"] == "repro-extcsr"
        assert hdr["num_vertices"] == g.num_vertices
        assert hdr["num_edges"] == g.num_edges
        assert hdr["nnz"] == g.indices.size
        assert hdr["total_weight"] == pytest.approx(float(g.total_weight))
        assert hdr["dtypes"] == {
            "xadj": "int64", "adjncy": "int64", "weights": "float64",
        }

    def test_reopen_is_o1(self, tmp_path):
        # Re-opening must not re-read the adjacency: with the bins
        # truncated behind the header's back the open still succeeds
        # (memmap is lazy) — proof no eager full scan happens.
        g = powerlaw_planted_partition(500, 8, seed=1).graph
        graph_to_store(g, tmp_path / "s")
        import time

        t0 = time.perf_counter()
        for _ in range(20):
            open_csr_store(tmp_path / "s")
        assert (time.perf_counter() - t0) / 20 < 0.05

    def test_not_a_store(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no header.json"):
            store_header(tmp_path)

    def test_edgelist_to_store_matches_reader(self, tmp_path):
        g = powerlaw_planted_partition(250, 6, seed=7).graph
        p = tmp_path / "g.txt"
        write_edgelist(g, p)
        ref = read_edgelist(p)
        edgelist_to_store(p, tmp_path / "s", chunk_bytes=311,
                          block_entries=509)
        csr_identical(ref, open_csr_store(tmp_path / "s"))

    def test_metis_to_store_matches_reader(self, tmp_path):
        g = powerlaw_planted_partition(250, 6, seed=8).graph
        p = tmp_path / "g.metis"
        write_metis(g, p)
        ref = read_metis(p)
        metis_to_store(p, tmp_path / "s", chunk_bytes=409)
        csr_identical(ref, open_csr_store(tmp_path / "s"))


class TestFingerprint:
    def test_fingerprint_mmap_equals_inram(self, tmp_path):
        g = powerlaw_planted_partition(300, 6, seed=2).graph
        graph_to_store(g, tmp_path / "s")
        assert graph_fingerprint(g) == graph_fingerprint(
            open_csr_store(tmp_path / "s")
        )

    def test_fingerprint_chunking_invariant(self, monkeypatch):
        from repro.obs import manifest as m

        g = powerlaw_planted_partition(200, 5, seed=3).graph
        ref = graph_fingerprint(g)
        monkeypatch.setattr(m, "FINGERPRINT_CHUNK_BYTES", 64)
        assert m.graph_fingerprint(g) == ref

    def test_fingerprint_distinguishes(self, tmp_path):
        a = powerlaw_planted_partition(200, 5, seed=3).graph
        b = powerlaw_planted_partition(200, 5, seed=4).graph
        assert graph_fingerprint(a) != graph_fingerprint(b)


class TestMemmapEndToEnd:
    @pytest.mark.parametrize("backend", ["serial", "threads", "procs"])
    def test_solver_identical_on_mmap_graph(self, tmp_path, backend):
        ds = load_dataset("dblp", seed=0, scale=0.25)
        g = ds.graph
        graph_to_store(g, tmp_path / "s")
        gm = open_csr_store(tmp_path / "s")
        nranks = 1 if backend == "serial" else 3
        cfg = InfomapConfig(seed=3, backend=backend)
        ref = distributed_infomap(g, nranks, cfg)
        out = distributed_infomap(gm, nranks, cfg)
        np.testing.assert_array_equal(ref.membership, out.membership)
        assert ref.codelength == out.codelength
        assert ref.extras["codelength_history"] == \
            out.extras["codelength_history"]

    def test_load_dataset_mmap_dir(self, tmp_path):
        ds = load_dataset("dblp", seed=0, scale=0.2,
                          mmap_dir=tmp_path / "s")
        assert ds.graph.is_memmapped
        ref = load_dataset("dblp", seed=0, scale=0.2)
        csr_identical(ref.graph, ds.graph)
        np.testing.assert_array_equal(ref.labels, ds.labels)
