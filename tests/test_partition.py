"""Partitioning: 1D, delegates, ghosts, balance — the §3.3 invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    load_dataset,
    powerlaw_configuration,
    powerlaw_planted_partition,
    ring_of_cliques,
    star,
)
from repro.partition import (
    OneDPartition,
    block_owners,
    compare_partitions,
    delegate_partition,
    ghost_counts_1d,
    ghost_sets_1d,
    round_robin_owners,
)


class TestOneD:
    def test_round_robin_owner_formula(self):
        own = round_robin_owners(10, 3)
        np.testing.assert_array_equal(own, np.arange(10) % 3)

    def test_block_contiguous(self):
        own = block_owners(10, 3)
        assert (np.diff(own) >= 0).all()
        assert np.bincount(own, minlength=3).min() >= 3

    def test_every_vertex_owned_once(self):
        part = OneDPartition.round_robin(100, 7)
        total = sum(part.local_vertices(r).size for r in range(7))
        assert total == 100

    def test_edges_per_rank_sums_to_nnz(self):
        g = powerlaw_configuration(500, seed=1)
        part = OneDPartition.round_robin(g, 4)
        assert part.edges_per_rank(g).sum() == g.nnz

    def test_owner_range_validated(self):
        with pytest.raises(ValueError):
            OneDPartition(owner=np.array([0, 5]), nranks=2)

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            round_robin_owners(10, 0)


class TestGhosts1D:
    def test_ghosts_are_remote_neighbors(self):
        lg = ring_of_cliques(4, 4)
        owner = round_robin_owners(16, 2)
        sets = ghost_sets_1d(lg.graph, owner, 2)
        for r, gs in enumerate(sets):
            assert (owner[gs] != r).all()

    def test_no_ghosts_on_single_rank(self):
        g = ring_of_cliques(3, 4).graph
        counts = ghost_counts_1d(g, np.zeros(12, dtype=np.int64), 1)
        assert counts.tolist() == [0]

    def test_star_hub_is_everyones_ghost(self):
        g = star(20)
        owner = round_robin_owners(21, 4)
        sets = ghost_sets_1d(g, owner, 4)
        for r in range(1, 4):  # hub 0 lives on rank 0
            assert 0 in sets[r]


class TestDelegatePartition:
    @pytest.fixture
    def hubby(self):
        return load_dataset("uk2005", seed=0, scale=0.5).graph

    def test_entries_conserved(self, hubby):
        dp = delegate_partition(hubby, 8)
        assert dp.edges_per_rank().sum() == hubby.nnz

    def test_low_degree_entries_stay_home(self, hubby):
        delegate_partition(hubby, 8).validate()

    def test_balance_within_one_of_ideal(self, hubby):
        dp = delegate_partition(hubby, 8)
        ideal = -(-hubby.nnz // 8)
        assert dp.edges_per_rank().max() <= ideal + 1

    def test_rebalance_off_is_worse_or_equal(self, hubby):
        on = delegate_partition(hubby, 8, rebalance=True)
        off = delegate_partition(hubby, 8, rebalance=False)
        assert on.edges_per_rank().max() <= off.edges_per_rank().max()

    def test_default_threshold_is_rank_count(self, hubby):
        dp = delegate_partition(hubby, 16)
        assert dp.d_high == 16
        degs = hubby.degrees()
        np.testing.assert_array_equal(dp.hub_ids,
                                      np.flatnonzero(degs > 16))

    def test_single_rank_no_hubs(self, hubby):
        dp = delegate_partition(hubby, 1)
        assert dp.num_hubs == 0
        assert (dp.entry_rank == 0).all()

    def test_ghosts_exclude_hubs(self, hubby):
        dp = delegate_partition(hubby, 8)
        hubset = set(dp.hub_ids.tolist())
        for gs in dp.ghost_sets():
            assert not hubset & set(gs.tolist())

    def test_delegate_beats_1d_on_ghosts(self, hubby):
        cmp = compare_partitions(hubby, 16)
        assert cmp.ghosts_delegate.max < cmp.ghosts_1d.max
        assert (cmp.workload_delegate.imbalance
                <= cmp.workload_1d.imbalance + 1e-9)

    def test_star_extreme_case(self):
        g = star(100)
        dp = delegate_partition(g, 4)
        assert dp.num_hubs == 1
        ideal = -(-g.nnz // 4)
        assert dp.edges_per_rank().max() <= ideal + 1

    def test_invalid_args(self):
        g = star(10)
        with pytest.raises(ValueError):
            delegate_partition(g, 0)
        with pytest.raises(ValueError):
            delegate_partition(g, 2, d_high=0)

    def test_comparison_report_fields(self, hubby):
        cmp = compare_partitions(hubby, 8)
        assert cmp.nranks == 8
        assert cmp.workload_improvement() >= 1.0
        assert "imbalance" in str(cmp.workload_1d)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 5000),
    p=st.integers(1, 12),
    dh=st.integers(2, 64),
)
def test_property_delegate_partition_invariants(seed, p, dh):
    """Edge conservation + home-placement hold for any (p, d_high)."""
    g = powerlaw_planted_partition(200, 6, seed=seed).graph
    dp = delegate_partition(g, p, d_high=dh)
    assert dp.edges_per_rank().sum() == g.nnz
    dp.validate()
    # Each ghost really is remote and non-hub.
    for r, gs in enumerate(dp.ghost_sets()):
        if gs.size:
            assert (dp.owner[gs] != r).all()
            assert not dp.is_hub[gs].any()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000), p=st.integers(2, 10))
def test_property_rebalanced_within_one(seed, p):
    g = powerlaw_configuration(300, exponent=2.1, seed=seed)
    if g.nnz == 0:
        return
    dp = delegate_partition(g, p)
    ideal = -(-g.nnz // p)
    # Rebalancing may be limited by the movable (hub) edge supply; it
    # must never exceed what 1D placement of low-degree rows forces.
    low_load = np.zeros(p, dtype=np.int64)
    rows = g._row_of_entry()
    low = ~dp.is_hub[rows]
    np.add.at(low_load, dp.owner[rows[low]], 1)
    assert dp.edges_per_rank().max() <= max(ideal + 1, low_load.max())
