"""Coarsening invariants and the Table-1 dataset stand-ins."""

import numpy as np
import pytest

from repro.graph import (
    DATASET_SPECS,
    LARGE_DATASETS,
    SMALL_DATASETS,
    coarsen,
    compact_labels,
    dataset_names,
    degree_summary,
    from_edges,
    load_dataset,
    project_labels,
    ring_of_cliques,
)


class TestCoarsen:
    def test_ring_of_cliques_collapses_to_ring(self):
        lg = ring_of_cliques(5, 4)
        cg = coarsen(lg.graph, lg.labels)
        assert cg.num_communities == 5
        assert cg.graph.num_self_loops == 5  # intra-clique mass
        np.testing.assert_array_equal(cg.sizes, [4] * 5)

    def test_total_weight_preserved(self):
        lg = ring_of_cliques(6, 5)
        cg = coarsen(lg.graph, lg.labels)
        assert cg.graph.total_weight == pytest.approx(lg.graph.total_weight)

    def test_weight_preserved_with_arbitrary_membership(self):
        from repro.graph import powerlaw_planted_partition

        g = powerlaw_planted_partition(400, 8, seed=3).graph
        rng = np.random.default_rng(0)
        membership = rng.integers(0, 17, size=g.num_vertices)
        cg = coarsen(g, membership)
        assert cg.graph.total_weight == pytest.approx(g.total_weight)
        cg.graph.validate()

    def test_inter_community_weight_summed(self):
        g = from_edges([(0, 2), (0, 3), (1, 2), (1, 3)])
        cg = coarsen(g, np.array([0, 0, 1, 1]))
        assert cg.graph.num_vertices == 2
        assert cg.graph.edge_weight(0, 1) == pytest.approx(4.0)

    def test_noncontiguous_labels_compacted(self):
        g = from_edges([(0, 1), (1, 2)])
        cg = coarsen(g, np.array([10, 10, 99]))
        assert cg.num_communities == 2
        np.testing.assert_array_equal(cg.community_of, [0, 0, 1])

    def test_shape_mismatch_rejected(self):
        g = from_edges([(0, 1)])
        with pytest.raises(ValueError):
            coarsen(g, np.array([0, 0, 0]))

    def test_compact_labels_roundtrip(self):
        labels = np.array([5, 3, 5, 9])
        compacted, originals = compact_labels(labels)
        np.testing.assert_array_equal(originals[compacted], labels)

    def test_project_labels(self):
        community_of = np.array([0, 0, 1, 1, 2])
        coarse_labels = np.array([7, 7, 8])
        out = project_labels(coarse_labels, community_of)
        np.testing.assert_array_equal(out, [7, 7, 7, 7, 8])

    def test_project_labels_range_check(self):
        with pytest.raises(ValueError):
            project_labels(np.array([1]), np.array([0, 5]))

    def test_double_coarsen_composes(self):
        lg = ring_of_cliques(8, 4)
        cg1 = coarsen(lg.graph, lg.labels)
        pairs = cg1.community_of  # fine -> level1
        level2 = coarsen(cg1.graph, np.arange(8) // 2)
        composed = project_labels(level2.community_of, pairs)
        assert np.unique(composed).size == 4


class TestDatasets:
    def test_names_cover_table1(self):
        assert len(dataset_names()) == 9
        assert set(SMALL_DATASETS) <= set(dataset_names())
        assert set(LARGE_DATASETS) <= set(dataset_names())

    def test_load_reproducible(self):
        a = load_dataset("dblp", seed=1)
        b = load_dataset("dblp", seed=1)
        np.testing.assert_array_equal(a.graph.indices, b.graph.indices)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("not-a-dataset")

    def test_name_normalization(self):
        assert load_dataset("UK-2007", scale=0.1).name == "uk2007"
        assert load_dataset("WebBase2001", scale=0.1).name == "webbase2001"

    def test_ground_truth_flags(self):
        assert load_dataset("amazon", scale=0.5).has_ground_truth
        assert not load_dataset("uk2005", scale=0.2).has_ground_truth

    def test_scale_changes_size(self):
        small = load_dataset("dblp", scale=0.25)
        big = load_dataset("dblp", scale=1.0)
        assert big.graph.num_vertices > 2 * small.graph.num_vertices

    def test_size_ordering_preserved(self):
        """The paper's dataset ordering by edge count must survive."""
        uk07 = load_dataset("uk2007", scale=0.25).graph.num_edges
        uk05 = load_dataset("uk2005", scale=0.25).graph.num_edges
        dblp = load_dataset("dblp", scale=0.25).graph.num_edges
        assert uk07 > uk05 > dblp

    @pytest.mark.parametrize("name", dataset_names())
    def test_all_standins_are_hub_heavy(self, name):
        data = load_dataset(name, scale=0.5)
        s = degree_summary(data.graph)
        # Scale-free signature: max degree well above the mean.
        assert s.max_degree > 3 * s.mean_degree
        assert data.graph.num_edges > 0
        data.graph.validate()

    def test_provenance_recorded(self):
        d = load_dataset("friendster", scale=0.2)
        assert d.paper_name == "Friendster"
        assert d.paper_edges == "1.81B"
        assert d.params["scale"] == 0.2
