"""Unit tests for the Fig-6/7 balance metrics (partition/balance.py)."""

import numpy as np
import pytest

from repro.graph import planted_partition
from repro.partition import compare_partitions
from repro.partition.balance import BalanceStats, balance_stats


def test_balance_stats_basic():
    s = balance_stats(np.array([10, 20, 30, 40]), "w")
    assert s.min == 10
    assert s.max == 40
    assert s.mean == 25.0
    assert s.imbalance == pytest.approx(40 / 25)
    assert s.spread == pytest.approx(4.0)
    assert "w:" in str(s) and "imbalance=1.60" in str(s)


def test_balance_stats_single_rank():
    s = balance_stats(np.array([7]), "solo")
    assert s.min == s.max == 7
    assert s.imbalance == 1.0
    assert s.spread == 1.0


def test_balance_stats_all_zero_is_perfectly_balanced():
    # Regression: max/mean with a zero mean used to report 0.0, which
    # ranked an idle fleet as "better than perfect".  Every rank carries
    # identical (zero) load, so the imbalance factor is exactly 1.0.
    s = balance_stats(np.zeros(8, dtype=np.int64), "idle")
    assert s.imbalance == 1.0
    assert s.spread == 0.0  # max/max(min,1) = 0/1


def test_balance_stats_zero_min_spread_guard():
    # A rank with zero load must not divide by zero in spread.
    s = balance_stats(np.array([0, 12]), "half")
    assert s.spread == 12.0
    assert s.imbalance == pytest.approx(12 / 6)


def test_balance_stats_empty_rejected():
    with pytest.raises(ValueError):
        balance_stats(np.empty(0, dtype=np.int64), "none")


def test_compare_partitions_improvements_positive():
    g = planted_partition(6, 30, 0.3, 0.02, seed=3).graph
    cmp = compare_partitions(g, 8)
    # Both improvement ratios are guarded against a zero delegate max.
    assert cmp.workload_improvement() > 0
    assert cmp.ghost_improvement() > 0
    assert cmp.workload_delegate.imbalance >= 1.0
    assert cmp.workload_1d.imbalance >= cmp.workload_delegate.imbalance * 0.5


def test_improvement_clamping_against_zero_max():
    zero = balance_stats(np.zeros(4, dtype=np.int64), "z")
    loaded = balance_stats(np.array([5, 5, 5, 5]), "l")
    from repro.partition.balance import PartitionComparison

    cmp = PartitionComparison(
        nranks=4,
        workload_1d=loaded,
        workload_delegate=zero,
        ghosts_1d=loaded,
        ghosts_delegate=zero,
        num_hubs=0,
        d_high=10,
    )
    # max(delegate.max, 1) clamps the denominator: no ZeroDivisionError,
    # ratio falls back to 1d.max / 1.
    assert cmp.workload_improvement() == 5.0
    assert cmp.ghost_improvement() == 5.0
