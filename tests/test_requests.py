"""Nonblocking collectives: iallreduce/iexchange request semantics.

Property-based checks that arbitrary post/wait interleavings are
value- and ledger-equivalent to the blocking collectives, that
:class:`RequestSet.waitall` is order-independent, and that the three
backends (threads, procs, serial) agree.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import RequestSet, run_spmd, run_spmd_procs

NRANKS = 3


def _expected_reduce(i, size):
    return sum(r * (i + 1) + 1 for r in range(size))


def _expected_exchange(i, rank, size):
    return {src: [src, i] for src in range(size) if src != rank}


def _make_nonblocking_prog(kinds, wait_order):
    """SPMD program: post requests 0..n-1 in order, wait in *wait_order*.

    ``kinds[i]`` is ``"r"`` (iallreduce) or ``"x"`` (iexchange);
    returns ``{i: value}`` plus the rank's comm stats snapshot.
    """

    def prog(comm):
        reqs = {}
        for i, kind in enumerate(kinds):
            if kind == "r":
                reqs[i] = comm.iallreduce(comm.rank * (i + 1) + 1)
            else:
                msgs = {
                    d: [comm.rank, i]
                    for d in range(comm.size)
                    if d != comm.rank
                }
                reqs[i] = comm.iexchange(msgs)
        out = {i: reqs[i].wait() for i in wait_order}
        return out, comm.stats.snapshot()

    return prog


def _make_blocking_prog(kinds):
    def prog(comm):
        out = {}
        for i, kind in enumerate(kinds):
            if kind == "r":
                out[i] = comm.allreduce(comm.rank * (i + 1) + 1)
            else:
                msgs = {
                    d: [comm.rank, i]
                    for d in range(comm.size)
                    if d != comm.rank
                }
                out[i] = comm.exchange(msgs)
        return out, comm.stats.snapshot()

    return prog


def _assert_values(results, kinds, size):
    for rank, (out, _snap) in enumerate(results):
        for i, kind in enumerate(kinds):
            if kind == "r":
                assert out[i] == _expected_reduce(i, size)
            else:
                assert out[i] == _expected_exchange(i, rank, size)


#: Ledger fields that must not depend on blocking vs nonblocking mode
#: (wait/overlap seconds are *meant* to differ — they measure the mode).
_LOGICAL_FIELDS = (
    "p2p_bytes_sent", "p2p_bytes_recv", "p2p_messages_sent",
    "p2p_messages_recv", "collective_bytes_in", "collective_bytes_out",
    "collective_calls", "logical_bytes_by_phase",
)


def _assert_ledger_parity(res_a, res_b):
    for (_oa, sa), (_ob, sb) in zip(res_a, res_b):
        for field in _LOGICAL_FIELDS:
            assert sa[field] == sb[field], field


@st.composite
def interleavings(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    kinds = draw(
        st.lists(
            st.sampled_from(["r", "x"]), min_size=n, max_size=n
        )
    )
    wait_order = draw(st.permutations(list(range(n))))
    return kinds, wait_order


class TestInterleavingsMatchBlocking:
    @settings(max_examples=12, deadline=None)
    @given(interleavings())
    def test_threads_any_wait_order_equals_blocking(self, case):
        kinds, wait_order = case
        nb = run_spmd(_make_nonblocking_prog(kinds, wait_order), NRANKS)
        bl = run_spmd(_make_blocking_prog(kinds), NRANKS)
        _assert_values(nb.results, kinds, NRANKS)
        _assert_values(bl.results, kinds, NRANKS)
        for (out_nb, _), (out_bl, _) in zip(nb.results, bl.results):
            assert out_nb == out_bl
        _assert_ledger_parity(nb.results, bl.results)

    @pytest.mark.parametrize(
        "kinds,wait_order",
        [
            (["r", "x"], [1, 0]),
            (["x", "r", "x"], [2, 0, 1]),
        ],
    )
    def test_procs_wait_order_equals_blocking(self, kinds, wait_order):
        nb = run_spmd_procs(
            _make_nonblocking_prog(kinds, wait_order), NRANKS
        )
        bl = run_spmd_procs(_make_blocking_prog(kinds), NRANKS)
        _assert_values(nb.results, kinds, NRANKS)
        for (out_nb, _), (out_bl, _) in zip(nb.results, bl.results):
            assert out_nb == out_bl
        _assert_ledger_parity(nb.results, bl.results)


class TestWaitallOrderIndependence:
    @settings(max_examples=10, deadline=None)
    @given(st.permutations(list(range(4))))
    def test_waitall_returns_insertion_order(self, post_order):
        def prog(comm):
            rs = RequestSet()
            posted = []
            for i in post_order:
                rs.add(comm.iallreduce(comm.rank * (i + 1) + 1))
                posted.append(i)
            return posted, rs.waitall()

        res = run_spmd(prog, NRANKS)
        for posted, values in res.results:
            assert values == [
                _expected_reduce(i, NRANKS) for i in posted
            ]

    def test_waitall_idempotent_and_len(self):
        def prog(comm):
            rs = RequestSet()
            rs.add(comm.iallreduce(1))
            rs.add(comm.iallreduce(2))
            a = rs.waitall()
            b = rs.waitall()
            return len(rs), rs.completed, a, b

        res = run_spmd(prog, NRANKS)
        for n, done, a, b in res.results:
            assert (n, done) == (2, True)
            assert a == b == [NRANKS, 2 * NRANKS]


class TestBackendParity:
    KINDS = ["r", "x", "r"]
    WAITS = [2, 0, 1]

    def test_threads_procs_agree(self):
        prog = _make_nonblocking_prog(self.KINDS, self.WAITS)
        rt = run_spmd(prog, NRANKS)
        rp = run_spmd_procs(prog, NRANKS)
        for (out_t, st_t), (out_p, st_p) in zip(rt.results, rp.results):
            assert out_t == out_p
            for field in _LOGICAL_FIELDS:
                assert st_t[field] == st_p[field], field

    def test_serial_loopback(self):
        prog = _make_nonblocking_prog(self.KINDS, self.WAITS)
        res = run_spmd(prog, 1)
        out, snap = res.results[0]
        assert out == {
            0: _expected_reduce(0, 1),
            1: {},
            2: _expected_reduce(2, 1),
        }
        # Nothing to wait on at one rank: requests complete eagerly,
        # so no blocked or hidden seconds are metered.
        assert sum(snap["wait_seconds_by_phase"].values()) == 0.0
        assert sum(snap["overlap_seconds_by_phase"].values()) == 0.0


class TestWaitOverlapMetering:
    def test_wait_and_overlap_split(self):
        import time

        def prog(comm):
            req = comm.iallreduce(comm.rank)
            if comm.rank == 0:
                time.sleep(0.05)  # compute stand-in: latency is hidden
            val = req.wait()
            snap = comm.stats.snapshot()
            return val, snap

        res = run_spmd(prog, 2)
        for rank, (val, snap) in enumerate(res.results):
            assert val == 1
            wait = sum(snap["wait_seconds_by_phase"].values())
            overlap = sum(snap["overlap_seconds_by_phase"].values())
            assert wait >= 0.0 and overlap >= 0.0
            if rank == 0:
                # The sleep happened between post and wait, so it is
                # accounted as overlap, not blocking.
                assert overlap >= 0.04
