"""Flow networks: normalization, coarsening, directed PageRank."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FlowNetwork, pagerank_flow
from repro.graph import (
    complete_graph,
    cycle_graph,
    from_edges,
    powerlaw_planted_partition,
    ring_of_cliques,
    star,
)


class TestFlowNetwork:
    def test_node_flow_is_relative_degree(self):
        g = star(4)  # hub degree 4, leaves degree 1; 2W = 8
        net = FlowNetwork.from_graph(g)
        np.testing.assert_allclose(
            net.node_flow, [0.5, 0.125, 0.125, 0.125, 0.125]
        )

    def test_total_flow_one(self):
        net = FlowNetwork.from_graph(complete_graph(7))
        assert net.total_flow() == pytest.approx(1.0)

    def test_exit_equals_flow_without_self_loops(self):
        net = FlowNetwork.from_graph(cycle_graph(6))
        np.testing.assert_allclose(net.node_exit_flow(), net.node_flow)

    def test_self_loop_flow_stays_home(self):
        g = from_edges([(0, 1, 1.0), (0, 0, 1.0)], keep_self_loops=True)
        net = FlowNetwork.from_graph(g)
        # W = 2; vertex 0 degree = 1 + 2*1 = 3 -> p0 = 3/4
        assert net.node_flow[0] == pytest.approx(0.75)
        # but only the (0,1) edge exits
        assert net.node_exit_flow()[0] == pytest.approx(0.25)

    def test_empty_graph_rejected(self):
        g = from_edges([], num_vertices=3)
        with pytest.raises(ValueError):
            FlowNetwork.from_graph(g)

    def test_shape_mismatch_rejected(self):
        g = complete_graph(3)
        with pytest.raises(ValueError):
            FlowNetwork(graph=g, node_flow=np.ones(5))

    def test_coarsen_preserves_flow_mass(self):
        lg = ring_of_cliques(5, 4)
        net = FlowNetwork.from_graph(lg.graph)
        coarse, community_of = net.coarsen(lg.labels)
        assert coarse.total_flow() == pytest.approx(1.0)
        assert coarse.graph.num_vertices == 5
        np.testing.assert_array_equal(community_of, lg.labels)

    def test_coarsen_exit_matches_cut(self):
        """Coarse singleton exits equal the fine partition's module exits."""
        from repro.core import ModuleStats

        lg = ring_of_cliques(4, 5)
        net = FlowNetwork.from_graph(lg.graph)
        fine_stats = ModuleStats.from_membership(net, lg.labels)
        coarse, _ = net.coarsen(lg.labels)
        np.testing.assert_allclose(
            coarse.node_exit_flow(), fine_stats.exit, atol=1e-14
        )
        np.testing.assert_allclose(
            coarse.node_flow, fine_stats.sum_p, atol=1e-14
        )

    def test_codelength_invariant_under_coarsening(self):
        """Clustering-by-labels then coarsening must not change L when
        the coarse partition is the identity (node term threaded)."""
        from repro.core import ModuleStats, plogp

        lg = ring_of_cliques(6, 4)
        net = FlowNetwork.from_graph(lg.graph)
        node_term = -float(plogp(net.node_flow).sum())
        fine = ModuleStats.from_membership(net, lg.labels)
        coarse, _ = net.coarsen(lg.labels)
        coarse_stats = ModuleStats.from_membership(
            coarse, np.arange(6), node_term=node_term
        )
        assert coarse_stats.codelength() == pytest.approx(fine.codelength())


class TestPagerank:
    def test_uniform_on_cycle(self):
        """A directed cycle has the uniform stationary distribution."""
        n = 8
        indptr = np.arange(n + 1, dtype=np.int64)
        indices = (np.arange(n, dtype=np.int64) + 1) % n
        w = np.ones(n)
        p = pagerank_flow(indptr, indices, w)
        np.testing.assert_allclose(p, np.full(n, 1.0 / n), atol=1e-9)

    def test_sums_to_one_with_dangling(self):
        # 0 -> 1 -> 2, vertex 2 dangling
        indptr = np.array([0, 1, 2, 2], dtype=np.int64)
        indices = np.array([1, 2], dtype=np.int64)
        p = pagerank_flow(indptr, indices, np.ones(2))
        assert p.sum() == pytest.approx(1.0)
        assert p[2] > p[0]  # sink accumulates rank

    def test_hub_attracts_rank(self):
        # all vertices point at 0
        n = 5
        indptr = np.array([0, 0, 1, 2, 3, 4], dtype=np.int64)
        indices = np.zeros(4, dtype=np.int64)
        p = pagerank_flow(indptr, indices, np.ones(4))
        assert p[0] == max(p)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pagerank_flow(np.array([0]), np.empty(0, np.int64), np.empty(0))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5000), k=st.integers(2, 8))
def test_property_coarsen_flow_conserved(seed, k):
    lg = powerlaw_planted_partition(150, 5, mu=0.3, seed=seed)
    net = FlowNetwork.from_graph(lg.graph)
    rng = np.random.default_rng(seed)
    membership = rng.integers(0, k, size=150)
    coarse, _ = net.coarsen(membership)
    assert coarse.total_flow() == pytest.approx(1.0)
    # Flow-weight sum is also preserved (self-loops keep internal mass).
    assert coarse.graph.total_weight == pytest.approx(
        net.graph.total_weight
    )
