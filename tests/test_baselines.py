"""Baseline algorithms: correctness and expected quality ordering."""

import numpy as np
import pytest

from repro.baselines import (
    LabelPropConfig,
    LouvainConfig,
    gossipmap,
    label_propagation,
    louvain,
    relaxmap,
)
from repro.core import InfomapConfig, SequentialInfomap
from repro.graph import (
    planted_partition,
    powerlaw_planted_partition,
    ring_of_cliques,
)
from repro.metrics import modularity, nmi


@pytest.fixture(scope="module")
def lfr():
    return powerlaw_planted_partition(1000, 12, mu=0.2, seed=1)


class TestLouvain:
    def test_recovers_cliques(self):
        lg = ring_of_cliques(8, 6)
        res = louvain(lg.graph)
        assert nmi(res.membership, lg.labels) == pytest.approx(1.0)
        assert res.method == "louvain"

    def test_modularity_positive_and_recorded(self, lfr):
        res = louvain(lfr.graph)
        q = res.extras["modularity"]
        assert q > 0.3
        assert q == pytest.approx(modularity(lfr.graph, res.membership))

    def test_planted_recovery(self):
        lg = planted_partition(5, 40, 0.4, 0.01, seed=3)
        res = louvain(lg.graph)
        assert nmi(res.membership, lg.labels) > 0.95

    def test_deterministic(self, lfr):
        a = louvain(lfr.graph, LouvainConfig(seed=4))
        b = louvain(lfr.graph, LouvainConfig(seed=4))
        np.testing.assert_array_equal(a.membership, b.membership)

    def test_codelength_is_nan(self, lfr):
        assert np.isnan(louvain(lfr.graph).codelength)


class TestLabelPropagation:
    def test_recovers_cliques(self):
        lg = ring_of_cliques(8, 6)
        res = label_propagation(lg.graph)
        assert nmi(res.membership, lg.labels) > 0.9

    def test_converges_quickly(self, lfr):
        res = label_propagation(lfr.graph)
        assert res.levels[0].sweeps < 40

    def test_min_label_ties_deterministic(self, lfr):
        a = label_propagation(lfr.graph, LabelPropConfig(seed=1))
        b = label_propagation(lfr.graph, LabelPropConfig(seed=1))
        np.testing.assert_array_equal(a.membership, b.membership)

    def test_random_ties_mode_runs(self, lfr):
        res = label_propagation(
            lfr.graph, LabelPropConfig(min_label_ties=False, seed=2)
        )
        assert res.membership.size == 1000


class TestRelaxMap:
    def test_matches_sequential_on_cliques(self):
        lg = ring_of_cliques(8, 6)
        seq = SequentialInfomap().run(lg.graph)
        res = relaxmap(lg.graph, 4)
        assert res.codelength == pytest.approx(seq.codelength)

    def test_quality_close_to_sequential(self, lfr):
        seq = SequentialInfomap().run(lfr.graph)
        res = relaxmap(lfr.graph, 4)
        assert res.codelength <= seq.codelength * 1.05

    def test_one_worker_reduces_to_sequentialish(self, lfr):
        res = relaxmap(lfr.graph, 1)
        assert res.converged

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            relaxmap(ring_of_cliques(3, 4).graph, 0)


class TestGossipMap:
    def test_runs_and_converges(self, lfr):
        res = gossipmap(lfr.graph, 4)
        assert res.method == "gossipmap"
        assert res.membership.size == 1000

    def test_quality_below_delegate_algorithm(self, lfr):
        """The design claim behind Table 3: local-information gossip is
        worse than the delegate algorithm at equal rank count."""
        from repro.core import distributed_infomap

        ours = distributed_infomap(lfr.graph, 4)
        theirs = gossipmap(lfr.graph, 4)
        assert theirs.codelength >= ours.codelength - 1e-9

    def test_quality_collapse_vs_delta_scoring(self, lfr):
        """The max-flow local rule settles fast but at a clearly worse
        codelength — the paper's §2.3 case against local methods."""
        from repro.core import distributed_infomap

        ours = distributed_infomap(lfr.graph, 4)
        theirs = gossipmap(lfr.graph, 4)
        assert theirs.codelength > ours.codelength * 1.02

    def test_modeled_time_recorded(self, lfr):
        res = gossipmap(lfr.graph, 4)
        assert res.extras["modeled"]["total"] > 0
