"""Communication metering and the cost model."""

import numpy as np
import pytest

from repro.simmpi import (
    CommLedger,
    CostAccumulator,
    MachineModel,
    ledger_comm_time,
    payload_nbytes,
    run_spmd,
)


class TestPayloadNbytes:
    def test_numpy_exact(self):
        a = np.zeros(1000, dtype=np.float64)
        assert payload_nbytes(a) == 8000 + 96

    def test_bytes_exact(self):
        assert payload_nbytes(b"x" * 123) == 123

    def test_scalars(self):
        assert payload_nbytes(None) == 1
        assert payload_nbytes(True) == 1
        assert payload_nbytes(7) == 8
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes(1 + 2j) == 16

    def test_containers_scale_with_contents(self):
        small = payload_nbytes([1, 2, 3])
        big = payload_nbytes(list(range(100)))
        assert big > small

    def test_dict_counts_keys_and_values(self):
        assert payload_nbytes({"k": 1.0}) > payload_nbytes({})

    def test_deterministic(self):
        obj = {"a": [1, 2.0, "three"], "b": np.ones(4)}
        assert payload_nbytes(obj) == payload_nbytes(obj)

    def test_set_and_frozenset(self):
        assert payload_nbytes({1, 2, 3}) == 16 + 3 * 8
        assert payload_nbytes(frozenset({1.0, 2.0})) == 16 + 2 * 8
        assert payload_nbytes(set()) == 16

    def test_dict_like_object_recurses_into_dict(self):
        class Record:
            def __init__(self):
                self.a = 1
                self.b = np.zeros(10)

        # 32 (object) + 24 (dict) + keys/values.
        want = 32 + payload_nbytes({"a": 1, "b": np.zeros(10)})
        assert payload_nbytes(Record()) == want

    def test_slots_object_recurses_into_slots(self):
        class Slotted:
            __slots__ = ("x", "y")

            def __init__(self):
                self.x = 7
                self.y = b"abcd"

        assert payload_nbytes(Slotted()) == 32 + 8 + 4

    def test_slots_object_with_unset_slot(self):
        class Sparse:
            __slots__ = ("x", "y")

            def __init__(self):
                self.x = 7  # y never assigned -> counted as None

        assert payload_nbytes(Sparse()) == 32 + 8 + 1

    def test_deep_nesting_falls_back_to_flat_estimate(self):
        # >16 levels: recursion stops, but the estimate stays finite
        # and deterministic instead of blowing the stack.
        deep = [1]
        for _ in range(40):
            deep = [deep]
        n = payload_nbytes(deep)
        assert n > 0
        assert n == payload_nbytes(deep)
        # Shallow nesting at the same leaf count is fully recursive and
        # therefore larger (16 bytes of overhead per level).
        assert n < 16 * 41 + 8


def test_ledger_counts_p2p_bytes():
    def prog(comm):
        if comm.rank == 0:
            comm.send(np.zeros(1000), 1)
        elif comm.rank == 1:
            comm.recv(source=0)
        comm.barrier()
        return None

    res = run_spmd(prog, 2)
    s0 = res.ledger.for_rank(0)
    s1 = res.ledger.for_rank(1)
    assert s0.p2p_messages_sent == 1
    assert s0.p2p_bytes_sent > 8000  # pickled ndarray
    assert s1.p2p_bytes_recv == s0.p2p_bytes_sent
    assert s1.p2p_messages_sent == 0


def test_phase_attribution():
    def prog(comm):
        comm.set_phase("alpha")
        comm.send("x" * 100, (comm.rank + 1) % comm.size)
        comm.recv()
        comm.set_phase("beta")
        comm.allreduce(1)
        return None

    res = run_spmd(prog, 2)
    for s in res.ledger:
        assert s.bytes_by_phase["alpha"] > 0
        assert "beta" in s.bytes_by_phase or s.collective_calls > 0


def test_meter_events_follow_phase_switch():
    # The trace meters must attribute each message to the phase active
    # when it was sent, matching the ledger split across a switch.
    from repro.obs import Tracer, phase_byte_totals

    tracer = Tracer()

    def prog(comm):
        comm.set_phase("alpha")
        comm.send(b"x" * 64, (comm.rank + 1) % comm.size)
        comm.recv()
        comm.set_phase("beta")
        comm.send(b"y" * 256, (comm.rank + 1) % comm.size)
        comm.recv()
        comm.barrier()
        return None

    res = run_spmd(prog, 2, tracer=tracer)
    totals = phase_byte_totals(tracer.merged_events())
    for phase in ("alpha", "beta"):
        ledger_bytes = sum(
            s.bytes_by_phase.get(phase, 0) for s in res.ledger
        )
        ledger_msgs = sum(
            s.messages_by_phase.get(phase, 0) for s in res.ledger
        )
        assert totals[phase]["bytes"] == ledger_bytes
        assert totals[phase]["messages"] == ledger_msgs
    assert totals["beta"]["bytes"] > totals["alpha"]["bytes"]


def test_ledger_aggregates():
    def prog(comm):
        comm.allgather(np.zeros(10 * (comm.rank + 1)))
        return None

    res = run_spmd(prog, 4)
    led = res.ledger
    assert led.total_bytes > 0
    assert led.max_rank_bytes <= led.total_bytes
    assert len(led.bytes_per_rank()) == 4
    assert led.total_messages >= 4
    snap = led.snapshot()
    assert len(snap) == 4 and snap[0]["rank"] == 0


def test_ledger_requires_positive_size():
    with pytest.raises(ValueError):
        CommLedger(0)


class TestMachineModel:
    def test_collective_latency_log_depth(self):
        m = MachineModel(alpha=1.0, collective_tree=True)
        assert m.collective_latency(8, 1) == pytest.approx(3.0)
        assert m.collective_latency(1, 10) == 0.0

    def test_collective_latency_linear(self):
        m = MachineModel(alpha=1.0, collective_tree=False)
        assert m.collective_latency(8, 1) == pytest.approx(7.0)

    def test_p2p_time(self):
        m = MachineModel(alpha=1e-6, beta=1e-9)
        assert m.p2p_time(10, 1000) == pytest.approx(10e-6 + 1e-6)


class TestCostAccumulator:
    def test_max_over_ranks_is_critical_path(self):
        acc = CostAccumulator(machine=MachineModel(c_work=1.0, alpha=0.0,
                                                   beta=0.0))
        acc.add_step("s", work_per_rank=[1.0, 5.0, 2.0], nranks=3)
        assert acc.compute_s == pytest.approx(5.0)

    def test_steps_accumulate_and_group_by_phase(self):
        acc = CostAccumulator(machine=MachineModel(c_work=1.0, alpha=0.0,
                                                   beta=0.0))
        acc.add_step("a", work_per_rank=[1.0])
        acc.add_step("b", work_per_rank=[2.0])
        acc.add_step("a", work_per_rank=[3.0])
        by = acc.by_phase()
        assert by["a"] == pytest.approx(4.0)
        assert by["b"] == pytest.approx(2.0)
        assert acc.total_s == pytest.approx(6.0)

    def test_merged(self):
        a = CostAccumulator()
        a.add_step("x", work_per_rank=[1.0])
        b = CostAccumulator()
        b.add_step("y", work_per_rank=[2.0])
        assert len(a.merged(b).steps) == 2


def test_ledger_comm_time_positive_after_traffic():
    def prog(comm):
        comm.allgather(np.zeros(100))
        return None

    res = run_spmd(prog, 4)
    assert ledger_comm_time(res.ledger) > 0.0


class TestLiveWiring:
    """The stats layer mirrors sent traffic onto the live plane with
    the exact semantics of ``total_bytes_sent`` / ``total_messages``,
    so a final snapshot reconciles with the ledger to the byte."""

    def test_record_send_and_collective_feed_live_row(self):
        from repro.obs.live import LivePlane
        from repro.simmpi.stats import RankStats

        plane = LivePlane(1)
        st = RankStats(rank=0)
        st.live = plane.for_rank(0)
        st.record_send(100)
        st.record_send(50)
        st.record_collective(30, 70)  # only the contribution counts
        st.record_recv(999)  # receives are the sender's bytes, not ours
        row = plane.for_rank(0)
        assert row.value("bytes_sent") == st.total_bytes_sent == 180
        assert row.value("messages_sent") == st.total_messages == 3

    def test_comm_live_property_defaults_to_null(self):
        from repro.obs.live import NULL_LIVE, LivePlane
        from repro.simmpi import SerialCommunicator

        comm = SerialCommunicator()
        assert comm.live is NULL_LIVE
        row = LivePlane(1).for_rank(0)
        comm.stats.live = row
        assert comm.live is row
