"""Graph file IO round-trips and error handling."""

import numpy as np
import pytest

from repro.graph import (
    from_edges,
    powerlaw_planted_partition,
    read_edgelist,
    read_metis,
    read_pajek,
    write_edgelist,
    write_metis,
    write_pajek,
)


@pytest.fixture
def weighted_graph():
    return from_edges([(0, 1, 2.5), (1, 2, 1.0), (0, 3, 0.75), (2, 3, 4.0)])


@pytest.fixture
def random_graph():
    return powerlaw_planted_partition(300, 6, seed=2).graph


def graphs_equal(a, b):
    assert a.num_vertices == b.num_vertices
    assert a.num_edges == b.num_edges
    np.testing.assert_array_equal(a.indptr, b.indptr)
    np.testing.assert_array_equal(a.indices, b.indices)
    np.testing.assert_allclose(a.weights, b.weights)


class TestEdgelist:
    def test_roundtrip_weighted(self, weighted_graph, tmp_path):
        p = tmp_path / "g.txt"
        write_edgelist(weighted_graph, p)
        graphs_equal(weighted_graph, read_edgelist(p))

    def test_roundtrip_unweighted(self, random_graph, tmp_path):
        p = tmp_path / "g.txt"
        write_edgelist(random_graph, p)
        graphs_equal(random_graph, read_edgelist(p))

    def test_gzip_transparent(self, weighted_graph, tmp_path):
        p = tmp_path / "g.txt.gz"
        write_edgelist(weighted_graph, p)
        graphs_equal(weighted_graph, read_edgelist(p))

    def test_comments_skipped(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# header\n0 1\n\n# more\n1 2\n")
        g = read_edgelist(p)
        assert g.num_edges == 2

    def test_relabel_returns_original_ids(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("100 200\n200 400\n")
        g, orig = read_edgelist(p, relabel=True)
        assert g.num_vertices == 3
        np.testing.assert_array_equal(orig, [100, 200, 400])

    def test_missing_weight_column_raises(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1 2.0\n1 2\n")
        with pytest.raises(ValueError):
            read_edgelist(p)

    def test_malformed_line_raises(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0\n")
        with pytest.raises(ValueError):
            read_edgelist(p)

    def test_force_unweighted_ignores_extra_column(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1 9.0\n")
        g = read_edgelist(p, weighted=False)
        assert g.edge_weight(0, 1) == 1.0


class TestMetis:
    def test_roundtrip_unweighted(self, random_graph, tmp_path):
        p = tmp_path / "g.graph"
        write_metis(random_graph, p)
        graphs_equal(random_graph, read_metis(p))

    def test_roundtrip_weighted(self, weighted_graph, tmp_path):
        p = tmp_path / "g.graph"
        write_metis(weighted_graph, p)
        graphs_equal(weighted_graph, read_metis(p))

    def test_self_loops_rejected_on_write(self, tmp_path):
        g = from_edges([(0, 0, 1.0), (0, 1, 1.0)], keep_self_loops=True)
        with pytest.raises(ValueError):
            write_metis(g, tmp_path / "g.graph")

    def test_header_mismatch_detected(self, tmp_path):
        p = tmp_path / "g.graph"
        p.write_text("3 5\n2\n1 3\n2\n")  # claims 5 edges, has 2
        with pytest.raises(ValueError):
            read_metis(p)

    def test_vertex_weights_unsupported(self, tmp_path):
        p = tmp_path / "g.graph"
        p.write_text("2 1 11\n1 2\n1 1\n")
        with pytest.raises(ValueError):
            read_metis(p)

    def test_comment_lines_skipped(self, tmp_path):
        p = tmp_path / "g.graph"
        p.write_text("% c\n3 2\n2 3\n1\n1\n")
        g = read_metis(p)
        assert g.num_edges == 2

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "g.graph"
        p.write_text("")
        with pytest.raises(ValueError):
            read_metis(p)


class TestPajek:
    def test_roundtrip(self, weighted_graph, tmp_path):
        p = tmp_path / "g.net"
        write_pajek(weighted_graph, p)
        graphs_equal(weighted_graph, read_pajek(p))

    def test_missing_vertices_section(self, tmp_path):
        p = tmp_path / "g.net"
        p.write_text("*Edges\n1 2\n")
        with pytest.raises(ValueError):
            read_pajek(p)

    def test_unweighted_edges_default_one(self, tmp_path):
        p = tmp_path / "g.net"
        p.write_text("*Vertices 2\n1 \"a\"\n2 \"b\"\n*Edges\n1 2\n")
        g = read_pajek(p)
        assert g.edge_weight(0, 1) == 1.0


def test_cross_format_consistency(random_graph, tmp_path):
    """The same graph through all three formats stays identical."""
    p1 = tmp_path / "a.txt"
    p2 = tmp_path / "b.graph"
    p3 = tmp_path / "c.net"
    write_edgelist(random_graph, p1)
    write_metis(random_graph, p2)
    write_pajek(random_graph, p3)
    graphs_equal(read_edgelist(p1), read_metis(p2))
    graphs_equal(read_metis(p2), read_pajek(p3))
