"""Sequential Infomap (Algorithm 1): quality, convergence, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FlowNetwork,
    InfomapConfig,
    ModuleStats,
    SequentialInfomap,
    best_move,
    sequential_infomap,
)
from repro.graph import (
    grid2d,
    planted_partition,
    powerlaw_planted_partition,
    ring_of_cliques,
    star,
)
from repro.metrics import nmi


class TestQuality:
    def test_recovers_ring_of_cliques_exactly(self):
        lg = ring_of_cliques(8, 6)
        res = SequentialInfomap().run(lg.graph)
        assert res.num_modules == 8
        assert nmi(res.membership, lg.labels) == pytest.approx(1.0)

    def test_recovers_planted_partition(self):
        lg = planted_partition(6, 30, 0.4, 0.01, seed=1)
        res = sequential_infomap(lg.graph)
        assert nmi(res.membership, lg.labels) > 0.95

    def test_lfr_reasonable_quality(self):
        lg = powerlaw_planted_partition(1500, 15, mu=0.2, seed=2)
        res = sequential_infomap(lg.graph)
        assert nmi(res.membership, lg.labels) > 0.7

    def test_star_collapses_to_one_module(self):
        res = sequential_infomap(star(20))
        assert res.num_modules == 1


class TestInvariants:
    def test_codelength_matches_final_membership(self):
        lg = powerlaw_planted_partition(600, 10, seed=3)
        res = sequential_infomap(lg.graph)
        net = FlowNetwork.from_graph(lg.graph)
        recomputed = ModuleStats.from_membership(net, res.membership)
        assert recomputed.codelength() == pytest.approx(res.codelength)

    def test_trajectory_non_increasing(self):
        lg = powerlaw_planted_partition(800, 10, seed=4)
        res = sequential_infomap(lg.graph)
        traj = res.codelength_trajectory()
        assert all(a >= b - 1e-9 for a, b in zip(traj, traj[1:]))

    def test_level_records_consistent(self):
        lg = ring_of_cliques(6, 5)
        res = sequential_infomap(lg.graph)
        assert res.levels[0].num_vertices == 30
        for rec in res.levels:
            assert 0.0 <= rec.merge_rate <= 1.0
            assert rec.num_modules <= rec.num_vertices
        # Consecutive levels chain: next level's n == this level's k.
        for a, b in zip(res.levels, res.levels[1:]):
            assert b.num_vertices == a.num_modules

    def test_membership_compact(self):
        res = sequential_infomap(ring_of_cliques(4, 4).graph)
        mods = np.unique(res.membership)
        np.testing.assert_array_equal(mods, np.arange(mods.size))

    def test_deterministic_given_seed(self):
        lg = powerlaw_planted_partition(400, 8, seed=5)
        a = sequential_infomap(lg.graph, InfomapConfig(seed=9))
        b = sequential_infomap(lg.graph, InfomapConfig(seed=9))
        np.testing.assert_array_equal(a.membership, b.membership)
        assert a.codelength == b.codelength

    def test_no_shuffle_deterministic_order(self):
        lg = ring_of_cliques(5, 4)
        a = sequential_infomap(lg.graph, InfomapConfig(shuffle=False))
        b = sequential_infomap(lg.graph, InfomapConfig(shuffle=False, seed=1))
        np.testing.assert_array_equal(a.membership, b.membership)

    def test_max_levels_respected(self):
        lg = powerlaw_planted_partition(500, 8, seed=6)
        res = sequential_infomap(lg.graph, InfomapConfig(max_levels=1))
        assert len(res.levels) == 1

    def test_grid_runs_without_structure(self):
        res = sequential_infomap(grid2d(12, 12))
        assert res.converged
        assert 1 <= res.num_modules <= 144


class TestBestMove:
    def test_stays_when_alone_is_best(self):
        # Path graph end vertex: joining its neighbour is good though.
        lg = ring_of_cliques(3, 5)
        net = FlowNetwork.from_graph(lg.graph)
        membership = lg.labels.astype(np.int64).copy()
        stats = ModuleStats.from_membership(net, membership)
        # Vertices already in their optimal cliques: no move improves.
        for u in range(lg.graph.num_vertices):
            prop = best_move(net, membership, stats, u)
            assert not prop.is_move

    def test_singleton_joins_clique(self):
        lg = ring_of_cliques(3, 5)
        net = FlowNetwork.from_graph(lg.graph)
        membership = lg.labels.astype(np.int64).copy()
        membership[0] = 99  # rip vertex 0 out
        stats = ModuleStats.from_membership(net, membership)
        prop = best_move(net, membership, stats, 0)
        assert prop.is_move
        assert prop.target == lg.labels[0]
        assert prop.delta < 0

    def test_candidate_filter(self):
        lg = ring_of_cliques(3, 5)
        net = FlowNetwork.from_graph(lg.graph)
        membership = lg.labels.astype(np.int64).copy()
        membership[0] = 99
        stats = ModuleStats.from_membership(net, membership)
        allowed = np.zeros(100, dtype=bool)  # forbid everything
        prop = best_move(net, membership, stats, 0,
                         candidate_filter=allowed)
        assert not prop.is_move

    def test_min_label_tie_break(self):
        # A vertex equidistant between two identical modules must pick
        # the smaller id under prefer_min_label.
        from repro.graph import from_edges

        g = from_edges([(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5),
                        (6, 0), (6, 3)])
        net = FlowNetwork.from_graph(g)
        membership = np.array([0, 0, 0, 1, 1, 1, 6], dtype=np.int64)
        stats = ModuleStats.from_membership(net, membership)
        prop = best_move(net, membership, stats, 6,
                         prefer_min_label=True, tie_eps=1e-9)
        if prop.is_move:
            assert prop.target == 0


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2000),
    k=st.integers(3, 6),
    size=st.integers(4, 7),
)
def test_property_sequential_always_converges(seed, k, size):
    # k >= 3 and size >= 4 keep the bridge fraction low enough that the
    # per-clique partition is the true MDL optimum (with 2-3 cliques of
    # 3 vertices the all-in-one partition legitimately codes shorter).
    lg = ring_of_cliques(k, size)
    res = sequential_infomap(lg.graph, InfomapConfig(seed=seed))
    assert res.converged
    assert res.membership.size == lg.graph.num_vertices
    # Clique recovery on this easy family should be exact.
    assert nmi(res.membership, lg.labels) == pytest.approx(1.0)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2000), mu=st.floats(0.05, 0.4))
def test_property_codelength_bounded_by_entropy(seed, mu):
    """L(final) <= L(one module) == node-visit entropy."""
    from repro.core import plogp

    lg = powerlaw_planted_partition(300, 6, mu=mu, seed=seed)
    net = FlowNetwork.from_graph(lg.graph)
    res = sequential_infomap(lg.graph, InfomapConfig(seed=seed))
    entropy = -float(plogp(net.node_flow).sum())
    assert res.codelength <= entropy + 1e-9
