"""Batch move-kernel: exact equivalence with the scalar paths.

The batched engine in :mod:`repro.core.kernels` is *decision-equivalent
by construction*: the sequential sweep guards snapshot scoring with a
drift bound and falls back to the scalar evaluator whenever the bound
cannot certify the decision, and the distributed sweep uses the batch
scores only as a stay-prefilter.  These tests pin the contract down:
same graph + same config (modulo ``batch_size``) must give *identical*
memberships and *bitwise-identical* codelengths.
"""

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    FlowNetwork,
    InfomapConfig,
    ModuleStats,
    aggregate_block_flows,
    distributed_infomap,
    drift_guard_bound,
    neighbor_module_flows,
    score_block_stats,
    sequential_infomap,
)
from repro.core.swap import TableArrays
from repro.graph import (
    barabasi_albert,
    from_edges,
    planted_partition,
    powerlaw_planted_partition,
    ring_of_cliques,
)
from repro.graph.graph import gather_rows


def _cfg(batch_size, **kw):
    return InfomapConfig(batch_size=batch_size, **kw)


# ---------------------------------------------------------------------------
# Unit tests of the kernel building blocks
# ---------------------------------------------------------------------------
class TestGatherRows:
    def test_matches_per_row_slices(self):
        g = powerlaw_planted_partition(200, 5, mu=0.3, seed=0).graph
        rng = np.random.default_rng(1)
        block = rng.choice(g.num_vertices, size=37, replace=False)
        entries, owner = gather_rows(g.indptr, block)
        expected = np.concatenate(
            [np.arange(g.indptr[v], g.indptr[v + 1]) for v in block]
        )
        np.testing.assert_array_equal(entries, expected)
        deg = g.indptr[block + 1] - g.indptr[block]
        np.testing.assert_array_equal(
            owner, np.repeat(np.arange(block.size), deg)
        )

    def test_empty_block(self):
        g = ring_of_cliques(3, 4).graph
        entries, owner = gather_rows(g.indptr, np.empty(0, dtype=np.int64))
        assert entries.size == 0 and owner.size == 0

    def test_isolated_rows(self):
        indptr = np.array([0, 0, 2, 2], dtype=np.int64)
        entries, owner = gather_rows(indptr, np.array([0, 1, 2]))
        np.testing.assert_array_equal(entries, [0, 1])
        np.testing.assert_array_equal(owner, [1, 1])


class TestAggregateBlockFlows:
    def test_matches_scalar_neighbor_module_flows(self):
        lg = planted_partition(6, 20, 0.35, 0.02, seed=5)
        net = FlowNetwork.from_graph(lg.graph)
        g = net.graph
        rng = np.random.default_rng(7)
        membership = rng.integers(0, 9, size=g.num_vertices).astype(np.int64)
        block = rng.choice(g.num_vertices, size=48, replace=False)
        agg = aggregate_block_flows(
            g.indptr, g.indices, g.weights, block, membership,
            net.node_flow, id_space=g.num_vertices,
        )
        for i, u in enumerate(block.tolist()):
            mods, flows, x_u = neighbor_module_flows(net, membership, int(u))
            a, b = int(agg.seg_ptr[i]), int(agg.seg_ptr[i + 1])
            np.testing.assert_array_equal(agg.seg_mods[a:b], mods)
            # Bitwise: both sides aggregate with np.bincount over the
            # same entry order and total in ascending-module order.
            np.testing.assert_array_equal(agg.seg_flows[a:b], flows)
            assert float(agg.x_u[i]) == x_u
            d_old = 0.0
            hit = np.flatnonzero(mods == membership[u])
            if hit.size:
                d_old = float(flows[hit[0]])
            assert float(agg.d_old[i]) == d_old

    def test_block_scores_match_scalar_deltas(self):
        from repro.core.mapequation import delta_codelength

        lg = ring_of_cliques(5, 6)
        net = FlowNetwork.from_graph(lg.graph)
        n = net.graph.num_vertices
        membership = np.arange(n, dtype=np.int64)
        stats = ModuleStats.from_membership(net, membership)
        block = np.arange(n, dtype=np.int64)
        agg, score = score_block_stats(net, membership, stats, block)
        for i in range(n):
            a, b = int(agg.seg_ptr[i]), int(agg.seg_ptr[i + 1])
            mods = agg.seg_mods[a:b]
            cand = mods != membership[i]
            deltas = delta_codelength(
                stats,
                old=int(membership[i]),
                new=mods[cand],
                p_u=float(agg.p_u[i]),
                x_u=float(agg.x_u[i]),
                d_old=float(agg.d_old[i]),
                d_new=agg.seg_flows[a:b][cand],
            )
            assert float(score.best_delta[i]) == float(np.min(deltas))
            assert int(score.best_target[i]) == int(
                mods[cand][int(np.argmin(deltas))]
            )


class TestDriftGuardBound:
    def test_zero_drift_is_exactly_zero(self):
        assert drift_guard_bound(0.0, 0.25, 1.0, 1.0) == 0.0

    def test_precondition_failure_returns_inf(self):
        assert math.isinf(drift_guard_bound(1e-3, 0.3, 1.0, 1.2))

    def test_bound_dominates_actual_shift(self):
        # |plogp(S+c) - plogp(S) - (plogp(S0+c) - plogp(S0))| <= bound
        # for |c| <= 2 x_u, sampled over a grid.
        from repro.core.mapequation import plogp

        x_u, s0, s_now = 0.01, 0.9, 0.87
        bound = drift_guard_bound(s_now - s0, x_u, s0, s_now)
        for c in np.linspace(-2 * x_u, 2 * x_u, 41):
            shift = abs(
                (plogp(s_now + c) - plogp(s_now))
                - (plogp(s0 + c) - plogp(s0))
            )
            assert shift <= bound + 1e-15


class TestTableArrays:
    def test_lookup_hits_and_misses(self):
        t = TableArrays(
            mod_ids=np.array([2, 5, 9], dtype=np.int64),
            exit=np.array([0.1, 0.2, 0.3]),
            sum_p=np.array([0.4, 0.5, 0.6]),
        )
        q, p = t.lookup(np.array([9, 0, 5, 11, 2], dtype=np.int64))
        np.testing.assert_array_equal(q, [0.3, 0.0, 0.2, 0.0, 0.1])
        np.testing.assert_array_equal(p, [0.6, 0.0, 0.5, 0.0, 0.4])

    def test_empty_table(self):
        t = TableArrays(
            mod_ids=np.empty(0, dtype=np.int64),
            exit=np.empty(0),
            sum_p=np.empty(0),
        )
        q, p = t.lookup(np.array([3, 7], dtype=np.int64))
        np.testing.assert_array_equal(q, [0.0, 0.0])
        np.testing.assert_array_equal(p, [0.0, 0.0])


class TestSortedRowsFastPath:
    def test_builder_graphs_are_sorted(self):
        g = ring_of_cliques(4, 5).graph
        assert g.sorted_rows
        for u in range(g.num_vertices):
            row = g.indices[g.indptr[u]:g.indptr[u + 1]]
            assert np.all(row[:-1] <= row[1:])

    def test_lookup_matches_linear_scan(self):
        g = planted_partition(4, 10, 0.5, 0.05, seed=11).graph
        assert g.sorted_rows
        unsorted = dataclasses.replace(g, sorted_rows=False)
        rng = np.random.default_rng(3)
        for _ in range(200):
            u, v = rng.integers(0, g.num_vertices, size=2)
            assert g.has_edge(int(u), int(v)) == unsorted.has_edge(
                int(u), int(v)
            )
            assert g.edge_weight(int(u), int(v)) == unsorted.edge_weight(
                int(u), int(v)
            )

    def test_flow_network_preserves_sortedness(self):
        g = ring_of_cliques(3, 4).graph
        net = FlowNetwork.from_graph(g)
        assert net.graph.sorted_rows == g.sorted_rows


# ---------------------------------------------------------------------------
# End-to-end equivalence: batch vs scalar must be indistinguishable
# ---------------------------------------------------------------------------
def _graph_cases():
    return [
        ring_of_cliques(6, 5).graph,
        planted_partition(5, 24, 0.4, 0.02, seed=2).graph,
        barabasi_albert(300, 3, seed=4),
        powerlaw_planted_partition(400, 8, mu=0.25, seed=6).graph,
    ]


class TestSequentialEquivalence:
    @pytest.mark.parametrize("gi", range(4))
    @pytest.mark.parametrize("seed", [0, 13])
    def test_identical_membership_and_codelength(self, gi, seed):
        g = _graph_cases()[gi]
        scalar = sequential_infomap(g, _cfg(0, seed=seed))
        batch = sequential_infomap(g, _cfg(256, seed=seed))
        np.testing.assert_array_equal(batch.membership, scalar.membership)
        assert batch.codelength == scalar.codelength  # bitwise

    def test_tiny_blocks_still_equivalent(self):
        g = planted_partition(4, 12, 0.5, 0.05, seed=9).graph
        scalar = sequential_infomap(g, _cfg(0, seed=1))
        for bs in (1, 2, 7, 64):
            batch = sequential_infomap(g, _cfg(bs, seed=1))
            np.testing.assert_array_equal(
                batch.membership, scalar.membership
            )
            assert batch.codelength == scalar.codelength

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(2, 6),
        size=st.integers(4, 16),
    )
    def test_property_random_planted(self, seed, k, size):
        g = planted_partition(k, size, 0.5, 0.03, seed=seed).graph
        # Small/sparse draws can come out edgeless, where flow (and hence
        # the codelength) is undefined — discard those, don't crash.
        assume(g.total_weight > 0)
        scalar = sequential_infomap(g, _cfg(0, seed=seed % 7))
        batch = sequential_infomap(g, _cfg(128, seed=seed % 7))
        np.testing.assert_array_equal(batch.membership, scalar.membership)
        assert batch.codelength == scalar.codelength


class TestDistributedEquivalence:
    @pytest.mark.parametrize("nranks", [1, 2, 4])
    @pytest.mark.parametrize("min_label", [True, False])
    def test_identical_membership_and_codelength(self, nranks, min_label):
        g = planted_partition(5, 20, 0.4, 0.02, seed=3).graph
        scalar = distributed_infomap(
            g, nranks, _cfg(0, seed=5, min_label=min_label)
        )
        batch = distributed_infomap(
            g, nranks, _cfg(256, seed=5, min_label=min_label)
        )
        np.testing.assert_array_equal(batch.membership, scalar.membership)
        assert batch.codelength == scalar.codelength  # bitwise

    def test_delegates_forced_low_d_high(self):
        # d_high=2 turns nearly every vertex into a hub with delegates,
        # exercising the boundary/ghost-module paths of the prefilter.
        g = powerlaw_planted_partition(300, 6, mu=0.25, seed=8).graph
        scalar = distributed_infomap(g, 4, _cfg(0, seed=2, d_high=2))
        batch = distributed_infomap(g, 4, _cfg(64, seed=2, d_high=2))
        np.testing.assert_array_equal(batch.membership, scalar.membership)
        assert batch.codelength == scalar.codelength

    def test_scale_free_multirank(self):
        g = barabasi_albert(400, 3, seed=12)
        scalar = distributed_infomap(g, 3, _cfg(0, seed=0))
        batch = distributed_infomap(g, 3, _cfg(256, seed=0))
        np.testing.assert_array_equal(batch.membership, scalar.membership)
        assert batch.codelength == scalar.codelength


class TestBatchSmoke4Ranks:
    def test_batch_path_runs_under_four_ranks(self):
        """Tier-1 smoke: the batched prefilter actually engages (block
        floor exceeded) and the run converges to a sane partition."""
        lg = powerlaw_planted_partition(600, 10, mu=0.2, seed=21)
        res = distributed_infomap(lg.graph, 4, _cfg(256, seed=1))
        assert res.num_modules > 1
        assert res.codelength > 0.0
        scalar = distributed_infomap(lg.graph, 4, _cfg(0, seed=1))
        assert res.codelength == scalar.codelength
