"""Directed extension: DiGraph, PageRank flow, directed map equation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DirectedFlowNetwork,
    DirectedModuleStats,
    InfomapConfig,
    directed_delta,
    sequential_infomap_directed,
)
from repro.core.directed import _vertex_module_flows
from repro.graph import digraph_from_edge_array, digraph_from_edges
from repro.metrics import nmi


def two_cycles(cross: float = 0.2):
    """Two directed 4-cycles with weak cross links."""
    edges = []
    for base in (0, 4):
        for i in range(4):
            edges.append((base + i, base + (i + 1) % 4, 3.0))
    edges += [(0, 4, cross), (6, 2, cross)]
    return digraph_from_edges(edges)


class TestDiGraph:
    def test_structure(self):
        g = digraph_from_edges([(0, 1), (1, 2), (2, 0)])
        assert g.num_vertices == 3 and g.num_edges == 3
        np.testing.assert_array_equal(g.successors(0), [1])
        np.testing.assert_array_equal(g.out_degrees(), [1, 1, 1])
        np.testing.assert_array_equal(g.in_degrees(), [1, 1, 1])

    def test_parallel_edges_merge(self):
        g = digraph_from_edges([(0, 1, 2.0), (0, 1, 3.0)])
        assert g.num_edges == 1
        assert g.successor_weights(0)[0] == pytest.approx(5.0)

    def test_direction_matters(self):
        g = digraph_from_edges([(0, 1), (1, 0)])
        assert g.num_edges == 2  # unlike the undirected builder

    def test_self_loops_kept(self):
        g = digraph_from_edges([(0, 0, 1.0), (0, 1, 1.0)])
        assert g.num_edges == 2

    def test_reverse_csr_is_transpose(self):
        g = digraph_from_edges([(0, 1), (0, 2), (1, 2)])
        in_indptr, in_sources, _w = g.reverse_csr()
        assert in_indptr.tolist() == [0, 0, 1, 3]
        np.testing.assert_array_equal(np.sort(in_sources[1:3]), [0, 1])

    def test_validation(self):
        with pytest.raises(ValueError):
            digraph_from_edge_array(np.array([0]), np.array([1]),
                                    np.array([-1.0]))
        with pytest.raises(ValueError):
            digraph_from_edge_array(np.array([0]), np.array([5]),
                                    num_vertices=2)


class TestDirectedFlow:
    def test_flow_sums(self):
        net = DirectedFlowNetwork.from_digraph(two_cycles(), damping=0.85)
        assert net.node_flow.sum() == pytest.approx(1.0)
        # Recorded link flow totals the damping factor (teleport is
        # unrecorded) up to dangling-node corrections (none here).
        assert net.out_flow.sum() == pytest.approx(0.85)

    def test_empty_rejected(self):
        g = digraph_from_edge_array(np.empty(0, np.int64),
                                    np.empty(0, np.int64), num_vertices=3)
        with pytest.raises(ValueError):
            DirectedFlowNetwork.from_digraph(g)

    def test_coarsen_preserves_flow(self):
        net = DirectedFlowNetwork.from_digraph(two_cycles())
        coarse, inv = net.coarsen(np.array([0, 0, 0, 0, 1, 1, 1, 1]))
        assert coarse.num_vertices == 2
        assert coarse.node_flow.sum() == pytest.approx(1.0)
        assert coarse.out_flow.sum() == pytest.approx(net.out_flow.sum())

    def test_coarse_exits_match_fine_module_exits(self):
        net = DirectedFlowNetwork.from_digraph(two_cycles())
        membership = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        fine = DirectedModuleStats.from_membership(net, membership)
        coarse, _ = net.coarsen(membership)
        singles = DirectedModuleStats.from_membership(
            coarse, np.arange(2), node_term=fine.node_term
        )
        np.testing.assert_allclose(singles.exit, fine.exit, atol=1e-12)
        np.testing.assert_allclose(singles.sum_p, fine.sum_p, atol=1e-12)


class TestDirectedDelta:
    def test_delta_matches_recompute(self):
        net = DirectedFlowNetwork.from_digraph(two_cycles())
        rng = np.random.default_rng(0)
        membership = rng.integers(0, 3, size=8).astype(np.int64)
        stats = DirectedModuleStats.from_membership(net, membership)
        for _ in range(40):
            u = int(rng.integers(8))
            cur = int(membership[u])
            tgt = int(rng.integers(3))
            if tgt == cur:
                continue
            outs, ins, x_out = _vertex_module_flows(net, membership, u)
            pred = directed_delta(
                stats, old=cur, new=tgt,
                p_u=float(net.node_flow[u]), x_out=x_out,
                out_old=outs.get(cur, 0.0), in_old=ins.get(cur, 0.0),
                out_new=outs.get(tgt, 0.0), in_new=ins.get(tgt, 0.0),
            )
            trial = membership.copy()
            trial[u] = tgt
            actual = (
                DirectedModuleStats.from_membership(
                    net, trial, node_term=stats.node_term
                ).codelength() - stats.codelength()
            )
            assert pred == pytest.approx(actual, abs=1e-10)

    def test_apply_move_tracks_recompute(self):
        net = DirectedFlowNetwork.from_digraph(two_cycles())
        rng = np.random.default_rng(1)
        membership = rng.integers(0, 4, size=8).astype(np.int64)
        stats = DirectedModuleStats.from_membership(net, membership)
        for _ in range(60):
            u = int(rng.integers(8))
            cur = int(membership[u])
            tgt = int(rng.integers(4))
            if tgt == cur:
                continue
            outs, ins, x_out = _vertex_module_flows(net, membership, u)
            stats.apply_move(
                old=cur, new=tgt,
                p_u=float(net.node_flow[u]), x_out=x_out,
                out_old=outs.get(cur, 0.0), in_old=ins.get(cur, 0.0),
                out_new=outs.get(tgt, 0.0), in_new=ins.get(tgt, 0.0),
            )
            membership[u] = tgt
        fresh = DirectedModuleStats.from_membership(
            net, membership, node_term=stats.node_term
        )
        m = fresh.exit.size
        np.testing.assert_allclose(fresh.exit, stats.exit[:m], atol=1e-12)
        assert fresh.codelength() == pytest.approx(stats.codelength(),
                                                   abs=1e-9)


class TestDirectedOptimizer:
    def test_recovers_directed_cycles(self):
        res = sequential_infomap_directed(two_cycles())
        assert res.num_modules == 2
        assert nmi(res.membership,
                   np.array([0] * 4 + [1] * 4)) == pytest.approx(1.0)

    def test_symmetric_digraph_matches_undirected_partition(self):
        """Symmetrizing an undirected clique graph must give the same
        communities through the directed machinery."""
        from repro.core import SequentialInfomap
        from repro.graph import ring_of_cliques

        lg = ring_of_cliques(5, 5)
        src, dst, w = lg.graph.edge_array()
        g = digraph_from_edge_array(
            np.concatenate([src, dst]), np.concatenate([dst, src]),
            np.concatenate([w, w]),
        )
        und = SequentialInfomap().run(lg.graph)
        dire = sequential_infomap_directed(g, damping=0.999)
        assert nmi(dire.membership, und.membership) == pytest.approx(
            1.0, abs=1e-6
        )

    def test_deterministic(self):
        g = two_cycles()
        a = sequential_infomap_directed(g, InfomapConfig(seed=3))
        b = sequential_infomap_directed(g, InfomapConfig(seed=3))
        np.testing.assert_array_equal(a.membership, b.membership)

    def test_codelength_decreases(self):
        g = two_cycles()
        res = sequential_infomap_directed(g)
        traj = res.codelength_trajectory()
        assert all(a >= b - 1e-9 for a, b in zip(traj, traj[1:]))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 3000))
def test_property_directed_random_graphs_converge(seed):
    rng = np.random.default_rng(seed)
    n, m = 40, 160
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    g = digraph_from_edge_array(src, dst, num_vertices=n)
    if g.num_edges == 0:
        return
    res = sequential_infomap_directed(g, InfomapConfig(seed=seed))
    assert res.converged
    assert res.membership.size == n
    net = DirectedFlowNetwork.from_digraph(g)
    fresh = DirectedModuleStats.from_membership(net, res.membership)
    assert fresh.codelength() == pytest.approx(res.codelength, abs=1e-9)
