"""Cross-round delta-swap protocol: change detection + replace caches."""

import numpy as np
import pytest

from repro.core import FlowNetwork
from repro.core.swap import LocalModuleState
from repro.graph import ring_of_cliques
from repro.partition import delegate_partition, local_views_delegate


@pytest.fixture
def states():
    lg = ring_of_cliques(6, 5)
    net = FlowNetwork.from_graph(lg.graph)
    dp = delegate_partition(lg.graph, 3, d_high=5)
    views = local_views_delegate(net, dp)
    return views, [LocalModuleState(v) for v in views]


class TestPrepareSwapDelta:
    def test_first_round_ships_everything(self, states):
        views, sts = states
        st = sts[0]
        own = st.contribution()
        out = st.prepare_swap_delta(own)
        shipped = {int(m) for b in out.values() for m in b[0].tolist()}
        boundary_mods = {
            int(st.module_of[bl]) for bl in views[0].boundary_local
        }
        assert boundary_mods <= shipped | set()

    def test_second_round_without_changes_ships_nothing(self, states):
        _views, sts = states
        st = sts[0]
        own = st.contribution()
        st.prepare_swap_delta(own)
        again = st.prepare_swap_delta(st.contribution())
        assert all(b[0].size == 0 for b in again.values()) or again == {}

    def test_changed_module_reshipped(self, states):
        views, sts = states
        r = next(i for i, v in enumerate(views) if v.boundary_local.size)
        st = sts[r]
        st.prepare_swap_delta(st.contribution())
        bl = int(views[r].boundary_local[0])
        old_mod = int(st.module_of[bl])
        st.module_of[bl] = 987654  # move the boundary vertex
        out = st.prepare_swap_delta(st.contribution())
        shipped = {int(m) for b in out.values() for m in b[0].tolist()}
        assert 987654 in shipped
        # The vacated module's contribution changed too (lost mass) —
        # it must be refreshed wherever it was previously sent.
        assert old_mod in shipped

    def test_moved_hub_modules_always_announced(self, states):
        _views, sts = states
        st = sts[0]
        st.prepare_swap_delta(st.contribution())
        out = st.prepare_swap_delta(st.contribution(),
                                    moved_hub_modules={424242})
        for b in out.values():
            assert 424242 in b[0].tolist()


class TestApplyAndRebuild:
    def test_replace_semantics_idempotent(self, states):
        _views, sts = states
        st = sts[0]
        ids = np.array([111], dtype=np.int64)
        batch = (ids, np.array([0.3]), np.array([0.1]),
                 np.array([2], dtype=np.int64))
        st.apply_swap_delta({1: batch})
        st.apply_swap_delta({1: batch})  # repeat must not double
        st.rebuild_table_from_caches(st.contribution())
        assert st.table_sum_p[111] == pytest.approx(0.3)
        assert st.table_members[111] == 2

    def test_contributions_from_two_peers_add(self, states):
        _views, sts = states
        st = sts[0]
        mk = lambda v: (np.array([5], dtype=np.int64), np.array([v]),
                        np.array([v / 2]), np.array([1], dtype=np.int64))
        st.apply_swap_delta({1: mk(0.2)})
        st.apply_swap_delta({2: mk(0.3)})
        st.rebuild_table_from_caches(st.contribution())
        # Module 5 is also a local singleton (vertex 5's own module), so
        # the table holds own + both peers' shares.
        own = st.contribution()
        pos = own.index_of(5)
        base = float(own.sum_p[pos]) if pos >= 0 else 0.0
        assert st.table_sum_p[5] == pytest.approx(base + 0.5)

    def test_update_replaces_stale_value(self, states):
        _views, sts = states
        st = sts[0]
        ids = np.array([777], dtype=np.int64)
        st.apply_swap_delta({1: (ids, np.array([0.9]), np.array([0.4]),
                                 np.array([9], dtype=np.int64))})
        st.apply_swap_delta({1: (ids, np.array([0.1]), np.array([0.05]),
                                 np.array([1], dtype=np.int64))})
        st.rebuild_table_from_caches(st.contribution())
        assert st.table_sum_p[777] == pytest.approx(0.1)
        assert st.table_members[777] == 1


class TestMembershipSyncDelta:
    def test_only_changes_after_first_round(self, states):
        views, sts = states
        st = sts[0]
        first = st.prepare_membership_sync_delta()
        # First round announces every boundary vertex once.
        n_first = sum(b[0].size for b in first.values())
        assert n_first >= views[0].boundary_local.size
        second = st.prepare_membership_sync_delta()
        assert sum(b[0].size for b in second.values()) == 0

    def test_changed_vertex_resent_once(self, states):
        views, sts = states
        r = next(i for i, v in enumerate(views) if v.boundary_local.size)
        st = sts[r]
        st.prepare_membership_sync_delta()
        bl = int(views[r].boundary_local[0])
        st.module_of[bl] = 31337
        out = st.prepare_membership_sync_delta()
        gid = int(views[r].global_of[bl])
        found = [
            (g, m)
            for b in out.values()
            for g, m in zip(b[0].tolist(), b[1].tolist())
            if g == gid
        ]
        assert found and all(m == 31337 for _g, m in found)
        # And quiesces again.
        again = st.prepare_membership_sync_delta()
        assert sum(b[0].size for b in again.values()) == 0


class TestEquivalenceWithAlwaysSend:
    def test_delta_and_literal_swap_reach_same_result(self):
        """End-to-end: delta_swap on/off must yield identical partitions
        (same information, fewer bytes)."""
        from repro.core import InfomapConfig, distributed_infomap
        from repro.graph import powerlaw_planted_partition

        lg = powerlaw_planted_partition(500, 8, mu=0.2, seed=11)
        on = distributed_infomap(lg.graph, 3, InfomapConfig(delta_swap=True))
        off = distributed_infomap(lg.graph, 3,
                                  InfomapConfig(delta_swap=False))
        assert on.codelength == pytest.approx(off.codelength, rel=0.03)
        assert on.extras["total_comm_bytes"] < off.extras["total_comm_bytes"]
