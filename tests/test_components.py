"""Connected components utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    component_sizes,
    connected_components,
    erdos_renyi,
    from_edges,
    largest_component,
    num_connected_components,
    path_graph,
    ring_of_cliques,
)


class TestComponents:
    def test_connected_graph_single_component(self):
        g = ring_of_cliques(4, 4).graph
        assert num_connected_components(g) == 1

    def test_two_components_plus_isolate(self):
        g = from_edges([(0, 1), (1, 2), (4, 5)], num_vertices=7)
        labels = connected_components(g)
        assert num_connected_components(g) == 4  # {0,1,2}, {3}, {4,5}, {6}
        assert labels[0] == labels[1] == labels[2]
        assert labels[4] == labels[5]
        assert labels[3] != labels[0] and labels[6] != labels[4]

    def test_component_sizes_descending(self):
        g = from_edges([(0, 1), (1, 2), (4, 5)], num_vertices=7)
        np.testing.assert_array_equal(component_sizes(g), [3, 2, 1, 1])

    def test_largest_component_subgraph(self):
        g = from_edges([(0, 1), (1, 2), (0, 2), (5, 6)], num_vertices=8)
        sub, orig = largest_component(g)
        assert sub.num_vertices == 3
        assert sub.num_edges == 3
        np.testing.assert_array_equal(orig, [0, 1, 2])
        sub.validate()

    def test_largest_component_of_connected_is_identity(self):
        g = path_graph(10)
        sub, orig = largest_component(g)
        assert sub.num_vertices == 10
        np.testing.assert_array_equal(orig, np.arange(10))

    def test_empty_graph_rejected(self):
        g = from_edges([], num_vertices=0)
        with pytest.raises(ValueError):
            largest_component(g)

    def test_preserves_weights_and_self_loops(self):
        g = from_edges([(0, 1, 2.5), (1, 1, 3.0), (3, 4, 1.0)],
                       keep_self_loops=True)
        sub, orig = largest_component(g)
        assert sub.num_self_loops == 1
        assert sub.total_weight == pytest.approx(5.5)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5000), p=st.floats(0.0, 0.06))
def test_property_components_partition_vertices(seed, p):
    g = erdos_renyi(80, p, seed=seed)
    labels = connected_components(g)
    assert labels.min() >= 0
    # Every edge joins same-component endpoints.
    src, dst, _ = g.edge_array()
    assert (labels[src] == labels[dst]).all()
    # Sizes sum to n.
    assert component_sizes(g).sum() == 80
    # Largest-component extraction is consistent with the sizes.
    if g.num_edges:
        sub, orig = largest_component(g)
        assert sub.num_vertices == component_sizes(g)[0]
