"""Streaming chunked readers: legacy equivalence and edge cases.

The chunked readers (``iter_edgelist_chunks`` / ``iter_metis_chunks``)
replaced the per-line Python loops; the old readers survive as
``read_edgelist_legacy`` / ``read_metis_legacy`` and serve here as the
equivalence oracle.  Every test that compares the two demands
byte-identical CSR columns, not just isomorphic graphs.
"""

import gzip

import numpy as np
import pytest

from repro.graph import (
    from_edges,
    iter_edgelist_chunks,
    powerlaw_planted_partition,
    read_edgelist,
    read_edgelist_legacy,
    read_metis,
    read_metis_legacy,
    write_edgelist,
    write_metis,
)

#: Chunk sizes chosen to split lines, tokens and records at awkward
#: byte offsets; 1 byte is the worst case (every line straddles).
SPLITTING_CHUNKS = (1, 7, 64, 257, 4096)


def csr_identical(a, b):
    assert a.num_vertices == b.num_vertices
    assert a.indptr.tobytes() == b.indptr.tobytes()
    assert a.indices.tobytes() == b.indices.tobytes()
    assert a.weights.tobytes() == b.weights.tobytes()


@pytest.fixture(scope="module")
def random_graph():
    return powerlaw_planted_partition(400, 8, seed=5).graph


class TestLegacyEquivalence:
    @pytest.mark.parametrize("chunk_bytes", SPLITTING_CHUNKS)
    def test_edgelist_unweighted(self, random_graph, tmp_path, chunk_bytes):
        p = tmp_path / "g.txt"
        write_edgelist(random_graph, p)
        csr_identical(
            read_edgelist_legacy(p),
            read_edgelist(p, chunk_bytes=chunk_bytes),
        )

    @pytest.mark.parametrize("chunk_bytes", SPLITTING_CHUNKS)
    def test_edgelist_weighted(self, tmp_path, chunk_bytes):
        g = from_edges(
            [(0, 1, 2.5), (1, 2, 1.25), (0, 3, 0.75), (2, 3, 4.0),
             (3, 4, 0.125), (4, 5, 9.5)]
        )
        p = tmp_path / "g.txt"
        write_edgelist(g, p)
        csr_identical(
            read_edgelist_legacy(p),
            read_edgelist(p, chunk_bytes=chunk_bytes),
        )

    @pytest.mark.parametrize("chunk_bytes", SPLITTING_CHUNKS)
    def test_metis(self, random_graph, tmp_path, chunk_bytes):
        p = tmp_path / "g.metis"
        write_metis(random_graph, p)
        csr_identical(
            read_metis_legacy(p),
            read_metis(p, chunk_bytes=chunk_bytes),
        )

    def test_metis_weighted(self, tmp_path):
        g = from_edges([(0, 1, 2.0), (1, 2, 3.0), (0, 2, 1.0)])
        p = tmp_path / "g.metis"
        write_metis(g, p)
        csr_identical(read_metis_legacy(p), read_metis(p, chunk_bytes=16))


class TestGzipChunkBoundaries:
    def test_gz_roundtrip_on_chunk_boundaries(self, random_graph, tmp_path):
        p = tmp_path / "g.txt.gz"
        write_edgelist(random_graph, p)
        ref = read_edgelist_legacy(p)
        for cb in (13, 100, 8192):
            csr_identical(ref, read_edgelist(p, chunk_bytes=cb))

    def test_gz_line_straddles_decompressed_chunk(self, tmp_path):
        lines = "".join(f"{i} {i + 1} {i + 0.5}\n" for i in range(200))
        p = tmp_path / "g.txt.gz"
        with gzip.open(p, "wt") as fh:
            fh.write(lines)
        csr_identical(read_edgelist_legacy(p), read_edgelist(p, chunk_bytes=3))


class TestReaderEdgeCases:
    def test_weighted_autodetect_spans_chunks(self, tmp_path):
        # First chunk holds only comments/blank lines: detection must
        # keep probing into later chunks instead of deciding on chunk 1.
        p = tmp_path / "g.txt"
        p.write_text("# c1\n# c2\n\n# c3\n0 1 2.5\n1 2 0.5\n")
        g = read_edgelist(p, chunk_bytes=4)
        assert g.weights.sum() == pytest.approx(2 * (2.5 + 0.5))

    def test_vertex_ids_span_chunk_split(self, tmp_path):
        # A multi-digit id split across a chunk boundary must re-join.
        p = tmp_path / "g.txt"
        p.write_text("123456 654321\n654321 999999\n")
        for cb in range(1, 16):
            g = read_edgelist(p, chunk_bytes=cb, relabel=True)[0]
            assert g.num_vertices == 3
            assert g.num_edges == 2

    def test_zero_edge_file(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# only comments\n\n")
        chunks = list(iter_edgelist_chunks(p))
        assert sum(c.src.size for c in chunks) == 0
        g = read_edgelist(p)
        assert g.num_vertices == 0 and g.num_edges == 0
        csr_identical(read_edgelist_legacy(p), g)

    def test_self_loop_only_file(self, tmp_path):
        # Loops are dropped by the reader, but the vertex count still
        # comes from the pre-drop ids (legacy rule).
        p = tmp_path / "g.txt"
        p.write_text("0 0\n1 1\n2 2\n")
        g = read_edgelist(p, chunk_bytes=4)
        assert g.num_vertices == 3
        assert g.num_edges == 0
        csr_identical(read_edgelist_legacy(p), g)

    def test_malformed_line_number_accurate(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n1 2\nbroken\n2 3\n")
        with pytest.raises(ValueError, match=r":3: "):
            read_edgelist(p, chunk_bytes=4)

    def test_malformed_line_number_in_later_chunk(self, tmp_path):
        lines = "".join(f"{i} {i + 1}\n" for i in range(50)) + "7 oops\n"
        p = tmp_path / "g.txt"
        p.write_text(lines)
        with pytest.raises(ValueError, match=r":51: invalid vertex id"):
            read_edgelist(p, chunk_bytes=17)

    def test_short_line_reports_expected_shape(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n5\n")
        with pytest.raises(ValueError, match=r":2: expected 'u v \[w\]'"):
            read_edgelist(p, chunk_bytes=3)

    def test_missing_weight_column_located(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1 2.0\n1 2 3.0\n3 4\n")
        with pytest.raises(ValueError, match=r":3: missing weight column"):
            read_edgelist(p, chunk_bytes=6)

    def test_invalid_weight_located(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1 2.0\n1 2 xx\n")
        with pytest.raises(ValueError, match=r":2: invalid weight 'xx'"):
            read_edgelist(p, chunk_bytes=5)

    def test_metis_row_count_mismatch(self, tmp_path):
        p = tmp_path / "g.metis"
        p.write_text("3 2\n2\n1 3\n")  # header says 3 rows, file has 2
        with pytest.raises(ValueError, match="header says n=3 but found 2"):
            read_metis(p)

    def test_metis_bad_neighbour_located(self, tmp_path):
        p = tmp_path / "g.metis"
        p.write_text("2 1\n2\nbad\n")
        with pytest.raises(ValueError, match=r":3: invalid neighbour id"):
            read_metis(p, chunk_bytes=4)

    def test_edge_chunks_carry_weights_consistently(self, tmp_path):
        # weighted= None must resolve once and hold for all chunks.
        p = tmp_path / "g.txt"
        p.write_text("".join(f"{i} {i + 1} 1.5\n" for i in range(100)))
        chunks = list(iter_edgelist_chunks(p, chunk_bytes=32))
        assert len(chunks) > 1
        assert all(c.weights is not None for c in chunks)
        total = sum(float(c.weights.sum()) for c in chunks)
        assert total == pytest.approx(150.0)
