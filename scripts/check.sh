#!/usr/bin/env bash
# One-shot local gate: tier-1 suite, then the opt-in benchmark guards
# on the reduced smoke profile.
#
#   scripts/check.sh            # tier-1 + smoke-profile bench guards
#   scripts/check.sh --fast     # tier-1 only
#
# Tier-1 must pass unchanged.  The bench stage runs every
# ``--run-bench`` guard (wire throughput, swap cycle, tracing
# overhead, live-telemetry overhead/fidelity, procs-vs-threads
# scaling, rebalance skew/quality, out-of-core ingest
# parse/build/RSS, incremental warm-start
# work/quality, nonblocking-overlap wait/throughput) with
# ``REPRO_BENCH_SMOKE=1`` so
# the whole gate finishes in a few minutes; the procs guard's
# backend-equivalence assertions (bitwise memberships, codelength
# trajectories, per-phase logical ledger totals) run at full strength
# either way — an equivalence mismatch fails this script.  Wall-clock
# speedup thresholds auto-skip on hosts without enough cores.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier 1: tests/ =="
python -m pytest -x -q

if [[ "${1:-}" == "--fast" ]]; then
    echo "== skipping bench guards (--fast) =="
    exit 0
fi

echo "== bench guards (smoke profile) =="
REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/ --run-bench -q

echo "== check.sh: all gates passed =="
