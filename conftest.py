def pytest_addoption(parser):
    parser.addoption(
        "--run-bench",
        action="store_true",
        default=False,
        help=(
            "run throughput-guard benchmarks (tests marked "
            "throughput_guard), which are skipped by default"
        ),
    )
