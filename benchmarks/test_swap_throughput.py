"""Swap-protocol throughput for the array-backed ModuleTable.

Not a paper figure — this tracks the absolute throughput of the full
swap+rebuild cycle (membership churn → membership-sync delta →
contribution → delta swap prepare → apply at the receivers → rebuild
from caches → table snapshot) run loopback over the local views of a
50k-vertex delegate-partitioned scale-free graph.  The dict oracle it
used to race against is retired; what remains is an absolute
rounds/sec record plus a determinism guard: two runs of the identical
churn schedule must end in bitwise-equal tables.  Results land in
``BENCH_swap.json`` at the repo root;
``repro.bench.export.merge_bench_reports`` folds every
``BENCH_*.json`` into one trajectory report.
"""

import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.export import result_to_json
from repro.core import FlowNetwork
from repro.core.swap import LocalModuleState
from repro.graph import barabasi_albert
from repro.partition import delegate_partition, local_views_delegate

N_VERTICES = 50_000
ATTACH = 5
NRANKS = 4
D_HIGH = 64  # BA(m=5) has min degree 5; delegate only the heavy tail
N_ROUNDS = 8


def _build_views():
    g = barabasi_albert(N_VERTICES, ATTACH, seed=42)
    net = FlowNetwork.from_graph(g)
    dp = delegate_partition(g, NRANKS, d_high=D_HIGH)
    return local_views_delegate(net, dp)


def _churn_schedule(views):
    """Per-round, per-rank (movers, targets) — same for every run."""
    rng = np.random.default_rng(7)
    schedule = []
    for _ in range(N_ROUNDS):
        per_rank = []
        for v in views:
            n_moves = max(v.num_owned // 20, 1)
            movers = rng.integers(0, v.num_owned, size=n_moves)
            targets = v.global_of[
                rng.integers(0, v.num_local, size=n_moves)
            ]
            per_rank.append((movers, targets))
        schedule.append(per_rank)
    return schedule


def _run_cycle(views, schedule):
    states = [LocalModuleState(v) for v in views]
    ghost_indexes = [
        {
            int(v.global_of[li]): li
            for li in range(v.num_owned + v.num_hubs, v.num_local)
        }
        for v in views
    ]
    nranks = len(views)
    t0 = time.perf_counter()
    for per_rank in schedule:
        for st, (movers, targets) in zip(states, per_rank):
            st.module_of[movers] = targets
        sync = [st.prepare_membership_sync_delta() for st in states]
        for dest in range(nranks):
            inbox = [
                sync[src][dest]
                for src in range(nranks)
                if src != dest and dest in sync[src]
            ]
            states[dest].apply_membership_sync(inbox, ghost_indexes[dest])
        owns = [st.contribution() for st in states]
        deltas = [
            st.prepare_swap_delta(own) for st, own in zip(states, owns)
        ]
        for dest in range(nranks):
            inbox = {
                src: deltas[src][dest]
                for src in range(nranks)
                if src != dest and dest in deltas[src]
            }
            states[dest].apply_swap_delta(inbox)
            states[dest].rebuild_table_from_caches(owns[dest])
        snaps = [st.table_arrays() for st in states]
    elapsed = time.perf_counter() - t0
    return {
        "elapsed_s": elapsed,
        "rounds_per_s": N_ROUNDS / elapsed,
        "table_sizes": [int(s.mod_ids.size) for s in snaps],
    }, snaps


def swap_throughput() -> dict:
    views = _build_views()
    schedule = _churn_schedule(views)

    row_a, snaps_a = _run_cycle(views, schedule)
    # Second run from fresh state: same schedule ⇒ bitwise-equal tables.
    row_b, snaps_b = _run_cycle(views, schedule)

    deterministic = all(
        np.array_equal(sa.mod_ids, sb.mod_ids)
        and np.array_equal(sa.exit, sb.exit)
        and np.array_equal(sa.sum_p, sb.sum_p)
        and np.array_equal(sa.members, sb.members)
        for sa, sb in zip(snaps_a, snaps_b)
    )

    rows = [
        {"run": "first", **row_a},
        {"run": "repeat", **row_b},
    ]
    lines = [
        f"swap+rebuild throughput, n={N_VERTICES} BA(m={ATTACH}), "
        f"{NRANKS} ranks, {N_ROUNDS} rounds"
    ]
    for r in rows:
        lines.append(
            f"  {r['run']:>6}  {r['rounds_per_s']:>8.2f} rounds/s  "
            f"({r['elapsed_s']:.2f}s)"
        )
    return {
        "text": "\n".join(lines),
        "rows": rows,
        "deterministic": deterministic,
        "n": N_VERTICES,
        "nranks": NRANKS,
        "rounds": N_ROUNDS,
    }


@pytest.mark.throughput_guard
def test_swap_throughput(run_once):
    out = run_once(swap_throughput)
    print("\n" + out["text"])
    assert out["deterministic"], "identical schedule diverged across runs"
    assert all(r["rounds_per_s"] > 0 for r in out["rows"])

    result_to_json(out, Path(__file__).resolve().parents[1] /
                   "BENCH_swap.json")
