"""Nonblocking-overlap throughput guard.

Guards the tentpole claim of the interior/boundary overlapped sweep
(:mod:`repro.simmpi.requests` + ``InfomapConfig.overlap``): with the
process backend on a multi-core host, posting the membership sync and
the round reductions early and draining them behind the interior sweep

* hides at least 30% of the blocking mode's request-wait seconds, and
* lifts round throughput (rounds per wall-second) by at least 1.15x,

while staying **bitwise identical** to the blocking path — the
equivalence half is asserted unconditionally, on every host.  On a
single-core host the ranks time-share one CPU, so there is no latency
to hide; the ratio assertions auto-skip (the JSON report still lands,
with the honest host stamp that explains the skip).

Results land in ``BENCH_overlap.json`` at the repo root.
``REPRO_BENCH_SMOKE=1`` shrinks the graph so ``scripts/check.sh``
finishes quickly.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.export import result_to_json
from repro.core import InfomapConfig, distributed_infomap
from repro.graph import barabasi_albert
from repro.obs.live import LivePlane, LiveSnapshot

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N_VERTICES = 3_000 if _SMOKE else 12_000
ATTACH = 6  # hub-heavy preferential attachment: boundary-dense cut
NRANKS = 4
MIN_WAIT_HIDDEN = 0.30   # overlap wait <= 0.7x blocking wait
MIN_THROUGHPUT = 1.15    # rounds/sec lift
MULTI_CORE = (os.cpu_count() or 1) >= 2


def _wait_overlap_totals(result) -> tuple[float, float]:
    wait = overlap = 0.0
    for st in result.extras["comm_snapshot"]:
        wait += sum(st["wait_seconds_by_phase"].values())
        overlap += sum(st["overlap_seconds_by_phase"].values())
    return wait, overlap


def overlap_throughput() -> dict:
    g = barabasi_albert(N_VERTICES, ATTACH, seed=42)
    base = dict(seed=13, backend="procs", d_high=64)

    t0 = time.perf_counter()
    r_block = distributed_infomap(
        g, NRANKS, InfomapConfig(overlap=False, **base)
    )
    dt_block = time.perf_counter() - t0

    plane = LivePlane(NRANKS, shared=True)
    try:
        t0 = time.perf_counter()
        r_over = distributed_infomap(
            g, NRANKS, InfomapConfig(overlap=True, **base), live=plane
        )
        dt_over = time.perf_counter() - t0
        snap = LiveSnapshot.from_plane(plane)
    finally:
        plane.close(unlink=True)

    # -- equivalence (asserted on every host) ---------------------------
    identical = bool(
        np.array_equal(
            np.asarray(r_block.membership), np.asarray(r_over.membership)
        )
        and r_block.codelength == r_over.codelength
        and r_block.extras["codelength_history"]
        == r_over.extras["codelength_history"]
    )
    reconciled = True
    for rank, st in enumerate(r_over.extras["comm_snapshot"]):
        reconciled &= snap.field("bytes_sent")[rank] == (
            st["p2p_bytes_sent"] + st["collective_bytes_in"]
        )
        reconciled &= abs(
            snap.field("wait_seconds")[rank]
            - sum(st["wait_seconds_by_phase"].values())
        ) < 1e-9
        reconciled &= abs(
            snap.field("overlap_seconds")[rank]
            - sum(st["overlap_seconds_by_phase"].values())
        ) < 1e-9

    # -- ratios ---------------------------------------------------------
    wait_block, _ = _wait_overlap_totals(r_block)
    wait_over, hidden_over = _wait_overlap_totals(r_over)
    rounds = int(r_block.extras["stage1_rounds"])
    thr_block = rounds / dt_block
    thr_over = rounds / dt_over
    wait_ratio = wait_over / wait_block if wait_block > 0 else 1.0
    thr_ratio = thr_over / thr_block if thr_block > 0 else 1.0

    rows = [
        {
            "variant": "blocking",
            "seconds": dt_block,
            "rounds": rounds,
            "rounds_per_sec": thr_block,
            "wait_seconds": wait_block,
        },
        {
            "variant": "overlap",
            "seconds": dt_over,
            "rounds": rounds,
            "rounds_per_sec": thr_over,
            "wait_seconds": wait_over,
            "hidden_seconds": hidden_over,
            "wait_ratio": wait_ratio,
            "throughput_ratio": thr_ratio,
        },
    ]
    text = (
        f"overlap vs blocking, n={N_VERTICES} BA(m={ATTACH}), "
        f"p={NRANKS} procs, cpus={os.cpu_count()}\n"
        f"  wait   {wait_block:.3f}s -> {wait_over:.3f}s "
        f"(ratio {wait_ratio:.3f}, hidden {hidden_over:.3f}s)\n"
        f"  rounds/s {thr_block:.3f} -> {thr_over:.3f} "
        f"(x{thr_ratio:.3f})"
    )
    return {
        "text": text,
        "rows": rows,
        "identical": identical,
        "reconciled": reconciled,
        "multi_core": MULTI_CORE,
    }


@pytest.mark.overlap_guard
def test_overlap_throughput(run_once):
    out = run_once(overlap_throughput)
    print("\n" + out["text"])
    assert out["identical"], "overlap mode changed the clustering"
    assert out["reconciled"], "live plane and ledger disagree"

    # The report (with its honest host stamp) lands before any skip, so
    # single-core hosts still contribute a data point.
    path = Path(__file__).resolve().parents[1] / "BENCH_overlap.json"
    result_to_json(out, path)
    data = json.loads(path.read_text())
    assert data["host"]["cpus"] >= 1
    assert "load_avg" in data["host"]
    assert data["rows"][1]["wait_ratio"] == out["rows"][1]["wait_ratio"]

    if not out["multi_core"]:
        pytest.skip(
            "single-core host: ranks time-share one CPU, no latency to "
            "hide — ratio assertions need >= 2 cpus"
        )
    over = out["rows"][1]
    assert over["wait_ratio"] <= 1.0 - MIN_WAIT_HIDDEN, over
    assert over["throughput_ratio"] >= MIN_THROUGHPUT, over
