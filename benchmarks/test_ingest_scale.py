"""Out-of-core ingestion guard: streaming parse, external build, RSS.

Three stages, one report (``BENCH_ingest.json``):

* **parse** — the chunked numpy parsers (edge-list and METIS) must
  beat the pre-PR per-line Python loops by >= ``MIN_PARSE_SPEEDUP``
  on a million-edge file, and the resulting CSR must be
  *byte-identical* (the legacy readers are kept precisely to serve as
  this oracle);
* **build** — a generated multi-million-edge stream goes through the
  two-pass external CSR builder at >= ``MIN_BUILD_EDGES_PER_SEC``,
  never holding all edges in memory;
* **cluster** — the store is clustered with ``backend="procs"`` via
  the partition-then-load path.  Two per-rank RSS guards (growth =
  ``VmHWM`` minus RSS sampled at rank start; Linux resets a child's
  high-water mark to its RSS at fork):

  - *ingest-stage* (asserted): peak sampled right after ``load_shard``
    must stay within ``RSS_BUDGET_FACTOR`` x that rank's shard CSR
    bytes plus a small scale-independent allowance.  That is the
    out-of-core property this PR controls: loading touches only the
    shard, never the whole graph.
  - *whole-run* (reported, not asserted): the final peak additionally
    includes solver workspace — module tables, ghost/delegate
    structures, frame buffers — which on an unstructured random
    graph is dominated by the ghost set (~every vertex is a ghost of
    every rank under 1D partitioning) and therefore scales with the
    *graph*, not the shard.  Bounding that is a solver property far
    outside this layer; the number is kept in the report so
    regressions are visible in ``BENCH_ingest.json`` diffs.

``REPRO_BENCH_SMOKE=1`` shrinks the edge counts so ``scripts/check.sh
--run-bench`` finishes quickly; every invariant is asserted either
way.
"""

import os
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.export import result_to_json
from repro.core import InfomapConfig, external_infomap
from repro.graph import (
    build_csr_store,
    read_edgelist,
    read_edgelist_legacy,
    read_metis,
    read_metis_legacy,
)
from repro.graph.io import EdgeChunk, iter_edgelist_chunks, iter_metis_chunks
from repro.graph.io import (  # the pre-PR per-line loops
    _parse_edgelist_perline,
    _parse_metis_perline,
)
from repro.partition import plan_shards

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

PARSE_EDGES = 120_000 if _SMOKE else 1_000_000
BUILD_EDGES = 200_000 if _SMOKE else 10_000_000
BUILD_VERTICES = BUILD_EDGES // 10
NRANKS = 4
SEED = 17
#: Timing repetitions per parser; the per-format ratio uses the min of
#: each side, the standard noise-robust estimator.
PARSE_REPS = 1 if _SMOKE else 3

#: Floor for ``min(legacy) / min(chunked)``.  Measured on the 1-core
#: CI VM at 10**6 edges: edge-list 4.2-5.2x, METIS 3.9-5.5x across
#: runs — the spread is CPU-frequency noise, which hits the
#: interpreter-bound legacy loop harder than the memory-bound numpy
#: parsers.  Typical runs reach ~5x; the assertion floor sits below
#: the worst observed min-ratio so the guard only fires on a real
#: regression (e.g. a parser falling back to a per-line path).  Smoke
#: files are small enough that fixed per-call overhead dominates,
#: hence the lower floor.
MIN_PARSE_SPEEDUP = 2.2 if _SMOKE else 3.5
MIN_BUILD_EDGES_PER_SEC = 30_000 if _SMOKE else 150_000
RSS_BUDGET_FACTOR = 2.0
#: Scale-independent per-rank allowance: interpreter + numpy + frame
#: rings exist regardless of shard size, so the factor alone would be
#: unmeetable for tiny smoke shards.  64 MiB is far below one full-run
#: shard (~80 MiB of CSR), so the scaling property is still guarded.
RSS_FIXED_ALLOWANCE = 64 << 20


def _edge_stream(num_edges, num_vertices, chunk=1 << 19):
    """Deterministic random edge chunks, never materialized whole."""
    for start in range(0, num_edges, chunk):
        m = min(chunk, num_edges - start)
        rng = np.random.default_rng(SEED + start)
        src = rng.integers(0, num_vertices, size=m)
        dst = rng.integers(0, num_vertices, size=m)
        w = rng.uniform(0.5, 1.5, size=m)
        yield EdgeChunk(src, dst, w)


def _write_parse_edgelist(path):
    with open(path, "w", encoding="utf-8") as fh:
        for c in _edge_stream(PARSE_EDGES, PARSE_EDGES // 10):
            np.savetxt(fh, np.column_stack([c.src, c.dst, c.weights]),
                       fmt="%d %d %.6f")


def _write_parse_metis(path):
    """A METIS fmt=0 file with ~PARSE_EDGES undirected edges."""
    rng = np.random.default_rng(SEED)
    n = PARSE_EDGES // 10
    src = rng.integers(0, n, size=PARSE_EDGES)
    dst = rng.integers(0, n, size=PARSE_EDGES)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    key = np.minimum(src, dst) * n + np.maximum(src, dst)
    _, idx = np.unique(key, return_index=True)
    src, dst = src[idx], dst[idx]
    allsrc = np.concatenate([src, dst])
    alldst = np.concatenate([dst, src])
    order = np.argsort(allsrc, kind="stable")
    alldst = alldst[order]
    indptr = np.concatenate(
        [[0], np.cumsum(np.bincount(allsrc, minlength=n))]
    )
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"{n} {src.size}\n")
        for u in range(n):
            fh.write(" ".join(
                str(v + 1) for v in alldst[indptr[u]:indptr[u + 1]]
            ) + "\n")
    return int(src.size)


def _csr_identical(a, b):
    assert a.indptr.tobytes() == b.indptr.tobytes()
    assert a.indices.tobytes() == b.indices.tobytes()
    assert a.weights.tobytes() == b.weights.tobytes()


def _time_min(fn, reps):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _stage_parse(tmp):
    el = Path(tmp) / "edges.txt"
    _write_parse_edgelist(el)
    t_el_legacy = _time_min(
        lambda: _parse_edgelist_perline(el, comments="#", weighted=None),
        PARSE_REPS,
    )
    t_el_chunked = _time_min(
        lambda: list(iter_edgelist_chunks(el)), PARSE_REPS
    )
    _csr_identical(read_edgelist_legacy(el), read_edgelist(el))
    el.unlink()

    mt = Path(tmp) / "graph.metis"
    metis_m = _write_parse_metis(mt)
    t_mt_legacy = _time_min(lambda: _parse_metis_perline(mt), PARSE_REPS)
    t_mt_chunked = _time_min(
        lambda: list(iter_metis_chunks(mt)), PARSE_REPS
    )
    _csr_identical(read_metis_legacy(mt), read_metis(mt))
    mt.unlink()

    return {
        "stage": "parse",
        "formats": {
            "edgelist": {
                "edges": PARSE_EDGES,
                "legacy_seconds": t_el_legacy,
                "chunked_seconds": t_el_chunked,
                "speedup": t_el_legacy / t_el_chunked,
            },
            "metis": {
                "edges": metis_m,
                "legacy_seconds": t_mt_legacy,
                "chunked_seconds": t_mt_chunked,
                "speedup": t_mt_legacy / t_mt_chunked,
            },
        },
    }


def _stage_build(store):
    t0 = time.perf_counter()
    header = build_csr_store(
        _edge_stream(BUILD_EDGES, BUILD_VERTICES), store
    )
    dt = time.perf_counter() - t0
    return {
        "stage": "build",
        "edges_in": BUILD_EDGES,
        "num_vertices": int(header["num_vertices"]),
        "num_edges": int(header["num_edges"]),
        "nnz": int(header["nnz"]),
        "seconds": dt,
        "edges_per_sec": BUILD_EDGES / dt,
    }


def _stage_cluster(store):
    plan = plan_shards(store, NRANKS)
    cfg = InfomapConfig(
        seed=SEED, backend="procs",
        # Bound the solve hard: the guard is about ingest memory, not
        # quality, and the ingest peak is sampled before any of this
        # runs.  Two move rounds at one level still exercise the full
        # swap/frame machinery on every rank.
        threshold=1e-3, round_threshold_rel=1e-3,
        max_levels=1, max_rounds=2,
    )
    t0 = time.perf_counter()
    # 4 ranks time-slice one CI core, so wall clock is ~4x the useful
    # work; the engine watchdog's default 600 s fires on the full-scale
    # graph even though every rank is runnable.
    result = external_infomap(store, NRANKS, cfg, timeout=3600.0)
    dt = time.perf_counter() - t0
    peaks = result.extras["peak_rss_per_rank"]
    ingest = result.extras["ingest_per_rank"]
    ranks = []
    for r in range(NRANKS):
        shard_bytes = plan.shard_csr_nbytes(r)
        before = int(ingest[r]["rss_before_bytes"])
        load_growth = int(ingest[r]["peak_rss_after_load_bytes"]) - before
        run_growth = int(peaks[r]) - before
        load_budget = RSS_BUDGET_FACTOR * shard_bytes + RSS_FIXED_ALLOWANCE
        ranks.append({
            "rank": r,
            "shard_csr_bytes": shard_bytes,
            "rss_before_bytes": before,
            "peak_rss_after_load_bytes":
                int(ingest[r]["peak_rss_after_load_bytes"]),
            "peak_rss_bytes": int(peaks[r]),
            "load_growth_bytes": load_growth,
            "load_budget_bytes": int(load_budget),
            "load_budget_ratio": load_growth / load_budget,
            "run_growth_bytes": run_growth,
        })
    return {
        "stage": "cluster",
        "nranks": NRANKS,
        "seconds": dt,
        "codelength": float(result.codelength),
        "num_modules": int(result.num_modules),
        "ingest_seconds_max": result.extras["ingest_seconds_max"],
        "ranks": ranks,
        "max_load_budget_ratio":
            max(x["load_budget_ratio"] for x in ranks),
        "max_run_growth_bytes":
            max(x["run_growth_bytes"] for x in ranks),
    }


def ingest_scale() -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        parse_row = _stage_parse(tmp)
        store = Path(tmp) / "store"
        build_row = _stage_build(store)
        cluster_row = _stage_cluster(store)
    rows = [parse_row, build_row, cluster_row]
    lines = [
        f"out-of-core ingestion, {BUILD_EDGES:,} edges, {NRANKS} ranks"
        + (" [smoke]" if _SMOKE else ""),
    ]
    for fmt, row in parse_row["formats"].items():
        lines.append(
            f"  parse   {fmt:8s} {row['speedup']:5.1f}x vs per-line "
            f"({row['legacy_seconds']:.2f}s -> "
            f"{row['chunked_seconds']:.2f}s, {row['edges']:,} edges)"
        )
    lines += [
        f"  build   {build_row['edges_per_sec']:,.0f} edges/s "
        f"({build_row['seconds']:.2f}s, nnz={build_row['nnz']:,})",
        f"  cluster L={cluster_row['codelength']:.4f} "
        f"{cluster_row['num_modules']} modules in "
        f"{cluster_row['seconds']:.1f}s; worst rank at "
        f"{cluster_row['max_load_budget_ratio']:.2f} of its ingest RSS "
        f"budget (whole-run peak growth "
        f"{cluster_row['max_run_growth_bytes'] / 2**20:,.0f} MiB, "
        f"solver-dominated, reported only)",
    ]
    return {
        "text": "\n".join(lines),
        "rows": rows,
        "smoke": _SMOKE,
    }


@pytest.mark.ingest_guard
def test_ingest_scale(run_once):
    out = run_once(ingest_scale)
    print("\n" + out["text"])
    parse_row, build_row, cluster_row = out["rows"]

    for fmt, row in parse_row["formats"].items():
        assert row["speedup"] >= MIN_PARSE_SPEEDUP, (
            f"chunked {fmt} parse only {row['speedup']:.1f}x the "
            f"per-line loop, need >= {MIN_PARSE_SPEEDUP}x"
        )
    assert build_row["edges_per_sec"] >= MIN_BUILD_EDGES_PER_SEC, (
        f"external build ran at {build_row['edges_per_sec']:,.0f} "
        f"edges/s, need >= {MIN_BUILD_EDGES_PER_SEC:,}"
    )
    assert cluster_row["num_modules"] > 1
    for row in cluster_row["ranks"]:
        assert row["load_growth_bytes"] <= row["load_budget_bytes"], (
            f"rank {row['rank']} ingest grew "
            f"{row['load_growth_bytes']:,} bytes, budget "
            f"{row['load_budget_bytes']:,} "
            f"(shard {row['shard_csr_bytes']:,} bytes)"
        )

    result_to_json(out, Path(__file__).resolve().parents[1] /
                   "BENCH_ingest.json")
