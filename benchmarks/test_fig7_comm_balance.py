"""Figure 7: per-rank ghost counts, 1D vs delegate partitioning."""

from repro.bench import fig7_comm_balance


def test_fig7_comm_balance(run_once):
    out = run_once(fig7_comm_balance, nranks=32, scale=0.5)
    print("\n" + out["text"])
    for row in out["rows"]:
        # Paper: delegate partitioning slashes the worst-rank ghost
        # count on every large dataset.
        assert row["max_ratio"] > 1.5, row
