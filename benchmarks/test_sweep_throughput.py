"""Sweep throughput: batched move kernel vs scalar loop.

Not a paper figure — this guards the vectorized batch engine in
``repro.core.kernels``.  Both modes run the same greedy sweeps from the
same singleton start on a 50k-vertex scale-free graph; because the
batched sweep is decision-equivalent by construction, the move counts
and codelengths must match exactly while the batch path clears a 3×
throughput floor.  Results land in ``BENCH_sweep.json`` at the repo
root for trend tracking.
"""

import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.export import result_to_json
from repro.core import FlowNetwork, InfomapConfig, ModuleStats
from repro.core.sequential import _sweep_batched, _sweep_scalar
from repro.graph import barabasi_albert

N_VERTICES = 50_000
ATTACH = 5
N_SWEEPS = 3
MIN_SPEEDUP = 3.0


def _run_mode(network, order, sweep_fn, config):
    n = network.graph.num_vertices
    membership = np.arange(n, dtype=np.int64)
    stats = ModuleStats.from_membership(network, membership)
    t0 = time.perf_counter()
    moved = 0
    for _ in range(N_SWEEPS):
        moved += sweep_fn(network, membership, stats, order, config)
    elapsed = time.perf_counter() - t0
    return {
        "elapsed_s": elapsed,
        "vertices_per_s": N_SWEEPS * n / elapsed,
        "moved": moved,
        "codelength": stats.codelength(),
    }


def sweep_throughput() -> dict:
    g = barabasi_albert(N_VERTICES, ATTACH, seed=42)
    network = FlowNetwork.from_graph(g)
    order = np.random.default_rng(7).permutation(g.num_vertices)
    order = order.astype(np.int64)

    scalar = _run_mode(
        network, order, _sweep_scalar, InfomapConfig(batch_size=0)
    )
    rows = [{"mode": "scalar", "batch_size": 0, **scalar}]
    for bs in (128, 256, 512):
        batch = _run_mode(
            network, order, _sweep_batched, InfomapConfig(batch_size=bs)
        )
        batch["speedup"] = scalar["elapsed_s"] / batch["elapsed_s"]
        rows.append({"mode": "batch", "batch_size": bs, **batch})

    lines = [
        f"sweep throughput, n={N_VERTICES} BA(m={ATTACH}), "
        f"{N_SWEEPS} sweeps"
    ]
    for r in rows:
        lines.append(
            f"  {r['mode']:>6} bs={r['batch_size']:<5} "
            f"{r['vertices_per_s']:>12,.0f} v/s  "
            f"({r['elapsed_s']:.2f}s, speedup "
            f"{r.get('speedup', 1.0):.2f}x)"
        )
    return {
        "text": "\n".join(lines),
        "rows": rows,
        "n": N_VERTICES,
        "sweeps": N_SWEEPS,
    }


@pytest.mark.throughput_guard
def test_sweep_throughput(run_once):
    out = run_once(sweep_throughput)
    print("\n" + out["text"])
    rows = out["rows"]
    scalar = rows[0]
    batches = rows[1:]
    # Decision equivalence: identical move counts and bitwise-equal
    # codelengths in every mode.
    for r in batches:
        assert r["moved"] == scalar["moved"], r
        assert r["codelength"] == scalar["codelength"], r
    # The perf claim: the default batch size clears the 3x floor.
    default_bs = InfomapConfig().batch_size
    default_row = next(r for r in batches if r["batch_size"] == default_bs)
    assert default_row["speedup"] >= MIN_SPEEDUP, default_row

    result_to_json(out, Path(__file__).resolve().parents[1] /
                   "BENCH_sweep.json")
