"""Incremental-solve guard: warm re-solve costs O(changed region).

Guards the incremental subsystem (``repro.core.incremental``) end to
end: a resident :class:`IncrementalSession` absorbs a stream of small
delta batches — each touching at most 1% of the edges — and each warm
re-solve must beat a cold solve of the same post-delta snapshot by a
wide margin in *work*, not just wall clock.  The edge-scan counters
(``work["edges_scanned"]`` from the sweep kernel) are the primary
metric: wall clock on a warm cache can flatter the incremental path,
whereas the counters measure exactly how much of the graph the solver
actually revisited.

Asserted invariants, per batch (sequential solver, same seed):

* warm ``edges_scanned`` is >= ``MIN_WORK_SPEEDUP``x below the cold
  re-solve's counter;
* warm wall clock (delta apply + dirty-region seed + solve) beats the
  cold re-solve by >= ``MIN_TIME_SPEEDUP``x;
* the warm codelength stays within ``QUALITY_BAND`` relative of the
  cold codelength.  After accumulated batches the two greedy
  trajectories land in different local optima and the noise runs in
  *both* directions (cold full re-solves are frequently the worse of
  the two here); the band catches an incremental path that degrades
  quality while the strict per-batch 1e-9 oracle lives in
  ``tests/test_incremental.py`` where single deterministic batches
  make it exact;
* the dirty region stays a small fraction of the graph (the warm
  start's whole premise).

Results land in ``BENCH_incremental.json`` at the repo root (with the
host stamp ``result_to_json`` adds);
``repro.bench.export.merge_bench_reports`` folds it into the
trajectory report.  ``REPRO_BENCH_SMOKE=1`` shrinks the graph so
``scripts/check.sh`` finishes fast; the work-counter and quality
invariants are asserted either way (the wall-clock floor is relaxed in
smoke, where fixed per-call overheads dominate the tiny solve).
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.export import result_to_json
from repro.core import IncrementalSession, InfomapConfig, sequential_infomap
from repro.graph import GraphDelta, from_edge_array

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

NUM_COMMS = 12 if _SMOKE else 32
COMM_SIZE = 48 if _SMOKE else 64
NUM_BATCHES = 4
SEED = 17
MIN_WORK_SPEEDUP = 5.0
MIN_TIME_SPEEDUP = 1.5 if _SMOKE else 5.0
QUALITY_BAND = 5e-3


def _community_graph():
    """Crisp communities joined by single weak bridge edges.

    Each community is a circulant ring (every member linked to its
    next two neighbours) plus a hub — the community's first vertex —
    linked to every other member, so Infomap resolves one module per
    community.  Consecutive communities share exactly one weak bridge.
    Inter-community connectivity being *sparse and structured* matters
    here: a random-background graph (e.g. planted partition with
    uniform ``p_out``) hands every vertex a handful of scattered
    external neighbours, so the 1-hop dirty frontier of even a tiny
    localized delta sprays across the whole vertex set and the warm
    re-solve degenerates to a full sweep.
    """
    src_parts, dst_parts, w_parts = [], [], []
    for c in range(NUM_COMMS):
        base = c * COMM_SIZE
        ids = np.arange(base, base + COMM_SIZE, dtype=np.int64)
        off = ids - base
        for k in (1, 2):
            src_parts.append(ids)
            dst_parts.append(base + (off + k) % COMM_SIZE)
            w_parts.append(np.full(COMM_SIZE, 1.0))
        others = ids[1:]
        src_parts.append(np.full(others.size, base, dtype=np.int64))
        dst_parts.append(others)
        w_parts.append(np.full(others.size, 1.0))
        nxt = ((c + 1) % NUM_COMMS) * COMM_SIZE
        src_parts.append(np.asarray([base + 1], dtype=np.int64))
        dst_parts.append(np.asarray([nxt + 1], dtype=np.int64))
        w_parts.append(np.asarray([0.05]))
    return from_edge_array(
        np.concatenate(src_parts),
        np.concatenate(dst_parts),
        np.concatenate(w_parts),
    )


def _delta_batch(graph, rng, budget: int, comms: list[int]) -> GraphDelta:
    """A mixed delta touching at most *budget* undirected edges.

    All edits land inside the communities listed in *comms* — delta
    batches in a dynamic graph are bursts around an active region, and
    localized churn is precisely the regime where the warm start pays
    (a scattered batch's 1-hop dirty frontier covers the whole graph
    no matter how few edges it edits).  Half deletions of existing
    intra-community edges, half insertions of currently absent
    intra-community pairs (so the planted structure stays crisp), plus
    a few reweights — the three delta kinds the subsystem supports, in
    one batch.
    """
    rows = graph._row_of_entry()
    comm_of = np.minimum(rows // COMM_SIZE, NUM_COMMS - 1)
    in_comms = np.isin(comm_of, comms)
    mask = (rows < graph.indices) & in_comms & (
        comm_of == np.minimum(graph.indices // COMM_SIZE, NUM_COMMS - 1)
    )
    # Leave the hub spokes alone: with them intact every community stays
    # a crisp star+ring module, keeping the warm and cold partitions in
    # the same neighbourhood of optima (the QUALITY_BAND contract).
    mask &= (rows % COMM_SIZE != 0) & (graph.indices % COMM_SIZE != 0)
    eu, ev = rows[mask], graph.indices[mask]
    n_rew = max(2, budget // 8)
    n_del = (budget - n_rew) // 2
    n_ins = budget - n_rew - n_del
    pick = rng.choice(eu.size, n_del + n_rew, replace=False)
    del_idx, rew_idx = pick[:n_del], pick[n_del:]
    present = set(zip(eu.tolist(), ev.tolist()))
    ins: list[tuple[int, int]] = []
    while len(ins) < n_ins:
        base = int(rng.choice(comms)) * COMM_SIZE
        a, b = sorted((base + rng.integers(1, COMM_SIZE, 2)).tolist())
        if a != b and (a, b) not in present and (a, b) not in ins:
            ins.append((a, b))
    return GraphDelta.build(
        insert=(
            np.asarray([e[0] for e in ins], dtype=np.int64),
            np.asarray([e[1] for e in ins], dtype=np.int64),
            np.full(n_ins, 1.0),
        ),
        delete=(eu[del_idx], ev[del_idx]),
        reweight=(eu[rew_idx], ev[rew_idx], np.full(n_rew, 0.5)),
    )


def incremental_speedup() -> dict:
    graph = _community_graph()
    cfg = InfomapConfig(seed=SEED)
    session = IncrementalSession(graph, cfg)
    session.solve()

    num_edges = graph.num_edges
    budget = max(4, num_edges // 100)  # <= 1% of the edges per batch
    rng = np.random.default_rng(SEED)

    rows = []
    for b in range(NUM_BATCHES):
        comms = [(2 * b) % NUM_COMMS, (2 * b + 1) % NUM_COMMS]
        delta = _delta_batch(session.graph, rng, budget, comms)
        t0 = time.perf_counter()
        warm = session.update(delta)
        warm_seconds = time.perf_counter() - t0
        event = session.events[-1]

        cold_work: dict = {}
        t0 = time.perf_counter()
        cold = sequential_infomap(session.graph, cfg, work=cold_work)
        cold_seconds = time.perf_counter() - t0

        rows.append({
            "batch": event["batch"],
            "delta_edges": len(delta),
            "dirty_fraction": event["dirty_fraction"],
            "warm_edges_scanned": int(event["work"]["edges_scanned"]),
            "cold_edges_scanned": int(cold_work["edges_scanned"]),
            "work_speedup": (
                cold_work["edges_scanned"]
                / max(event["work"]["edges_scanned"], 1)
            ),
            "warm_seconds": warm_seconds,
            "cold_seconds": cold_seconds,
            "time_speedup": cold_seconds / max(warm_seconds, 1e-12),
            "warm_codelength": float(warm.codelength),
            "cold_codelength": float(cold.codelength),
        })

    lines = [
        f"incremental warm-start, {NUM_COMMS}x{COMM_SIZE} hub+ring "
        f"communities, {num_edges} edges, batches of {budget} edge ops"
        + (" [smoke]" if _SMOKE else ""),
    ]
    for r in rows:
        lines.append(
            f"  batch {r['batch']}: dirty {r['dirty_fraction']:6.2%}  "
            f"work {r['warm_edges_scanned']:>8} vs "
            f"{r['cold_edges_scanned']:>8} ({r['work_speedup']:5.1f}x)  "
            f"wall {r['warm_seconds']:.3f}s vs {r['cold_seconds']:.3f}s "
            f"({r['time_speedup']:.1f}x)  "
            f"L {r['warm_codelength']:.6f} vs {r['cold_codelength']:.6f}"
        )
    return {
        "text": "\n".join(lines),
        "rows": rows,
        "n": NUM_COMMS * COMM_SIZE,
        "num_edges": int(num_edges),
        "delta_budget": int(budget),
        "batches": NUM_BATCHES,
        "smoke": _SMOKE,
    }


@pytest.mark.incremental_guard
def test_incremental_speedup(run_once):
    out = run_once(incremental_speedup)
    print("\n" + out["text"])
    assert len(out["rows"]) == NUM_BATCHES

    for r in out["rows"]:
        assert r["delta_edges"] <= out["delta_budget"]
        assert r["dirty_fraction"] < 0.5, (
            f"batch {r['batch']}: dirty region covers "
            f"{r['dirty_fraction']:.0%} of the graph — not incremental"
        )
        assert r["work_speedup"] >= MIN_WORK_SPEEDUP, (
            f"batch {r['batch']}: warm scan {r['warm_edges_scanned']} vs "
            f"cold {r['cold_edges_scanned']} is only "
            f"{r['work_speedup']:.1f}x, need >= {MIN_WORK_SPEEDUP}x"
        )
        assert r["time_speedup"] >= MIN_TIME_SPEEDUP, (
            f"batch {r['batch']}: warm {r['warm_seconds']:.3f}s vs cold "
            f"{r['cold_seconds']:.3f}s is only {r['time_speedup']:.1f}x, "
            f"need >= {MIN_TIME_SPEEDUP}x"
        )
        gap = abs(r["warm_codelength"] - r["cold_codelength"])
        assert gap <= QUALITY_BAND * abs(r["cold_codelength"]), (
            f"batch {r['batch']}: warm codelength "
            f"{r['warm_codelength']} vs cold {r['cold_codelength']} "
            f"differs by {gap / abs(r['cold_codelength']):.2e} relative, "
            f"band is {QUALITY_BAND}"
        )

    result_to_json(out, Path(__file__).resolve().parents[1] /
                   "BENCH_incremental.json")
