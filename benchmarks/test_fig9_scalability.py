"""Figure 9: modeled total runtime vs simulated rank count."""

from repro.bench import fig9_scalability


def test_fig9_scalability(run_once):
    out = run_once(
        fig9_scalability, ("uk2005", "uk2007"), nranks_list=(2, 4, 8, 16),
        scale=0.3,
    )
    print("\n" + out["text"])
    for name, series in out["series"].items():
        ps = sorted(series)
        # Paper: total time is near-inversely proportional to p.  The
        # modeled time at the largest p must clearly beat the smallest.
        assert series[ps[-1]] < series[ps[0]], (name, series)
