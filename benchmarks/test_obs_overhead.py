"""Tracing overhead and fidelity guard for the run-trace subsystem.

Two claims are guarded:

* **overhead** — a fully-traced greedy sweep stays within 10% of the
  untraced wall clock.  The disabled path costs one attribute check per
  would-be event, and the enabled path appends one small dict per
  event; per-sweep (not per-vertex) events keep both negligible.
* **fidelity** — a traced distributed run on the dblp stand-in is
  bitwise-identical to the untraced run (membership and codelength
  trajectory), its meter events reconcile exactly with the
  communication ledger, and the Perfetto export is valid with one
  track per rank.

Results land in ``BENCH_obs.json`` at the repo root.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.export import result_to_json
from repro.core import InfomapConfig, distributed_infomap, sequential_infomap
from repro.graph import barabasi_albert, load_dataset
from repro.obs import (
    Tracer,
    build_manifest,
    build_run_artifact,
    phase_byte_totals,
    to_chrome_trace,
)

N_VERTICES = 20_000
ATTACH = 5
MAX_OVERHEAD = 1.10
PAIRS = 5


def obs_overhead() -> dict:
    g = barabasi_albert(N_VERTICES, ATTACH, seed=42)
    cfg = InfomapConfig(seed=13, max_levels=2)

    # Measure interleaved traced/untraced pairs and take the *median*
    # of the per-pair ratios: back-to-back runs see the same machine
    # state, so slow drift (thermals, noisy neighbours) cancels inside
    # each pair, and the median discards the odd pair that straddled a
    # load spike — which a plain best-of-N on each side does not.
    ratios: list[float] = []
    r_plain = r_traced = None
    tracers: list[Tracer] = []
    for _ in range(PAIRS):
        t0 = time.perf_counter()
        r_plain = sequential_infomap(g, cfg)
        dt_plain = time.perf_counter() - t0

        tracer = Tracer()
        tracers.append(tracer)
        t0 = time.perf_counter()
        r_traced = sequential_infomap(g, cfg, tracer=tracer)
        dt_traced = time.perf_counter() - t0
        ratios.append(dt_traced / dt_plain)

    overhead = float(np.median(ratios))
    rows = [
        {
            "variant": "untraced",
            "codelength": r_plain.codelength,
        },
        {
            "variant": "traced",
            "codelength": r_traced.codelength,
            "overhead": overhead,
            "ratios": ratios,
            "events": tracers[-1].num_events(),
        },
    ]
    text = (
        f"tracing overhead, n={N_VERTICES} BA(m={ATTACH}), "
        f"median of {PAIRS} interleaved pairs\n"
        f"  ratios {['%.3f' % r for r in ratios]}\n"
        f"  overhead {overhead:.3f}x "
        f"({tracers[-1].num_events()} events)"
    )
    return {
        "text": text,
        "rows": rows,
        "identical": bool(
            np.array_equal(r_plain.membership, r_traced.membership)
            and r_plain.codelength == r_traced.codelength
        ),
    }


@pytest.mark.obs_guard
def test_obs_overhead(run_once):
    out = run_once(obs_overhead)
    print("\n" + out["text"])
    assert out["identical"], "tracing changed the clustering outcome"
    traced_row = out["rows"][1]
    assert traced_row["overhead"] <= MAX_OVERHEAD, traced_row

    result_to_json(out, Path(__file__).resolve().parents[1] /
                   "BENCH_obs.json")


@pytest.mark.obs_guard
def test_traced_distributed_dblp_artifact(tmp_path):
    """Traced dblp stand-in run: bitwise equal, reconciled, exportable."""
    data = load_dataset("dblp", scale=0.5)
    cfg = InfomapConfig(seed=5)
    nranks = 4

    plain = distributed_infomap(data.graph, nranks, cfg)
    tracer = Tracer()
    traced = distributed_infomap(data.graph, nranks, cfg, tracer=tracer)

    # Bitwise-identical clustering and codelength trajectory.
    assert np.array_equal(plain.membership, traced.membership)
    assert (
        plain.extras["codelength_history"]
        == traced.extras["codelength_history"]
    )

    # Exact ledger reconciliation of the meter events.
    totals = phase_byte_totals(tracer.merged_events())
    assert (
        sum(slot["bytes"] for slot in totals.values())
        == traced.extras["total_comm_bytes"]
    )

    # Valid Perfetto export with one track per rank.
    artifact = build_run_artifact(
        tracer, traced,
        manifest=build_manifest(
            config=cfg, nranks=nranks, copy_mode="frames",
            graph=data.graph, method="distributed",
        ),
    )
    path = tmp_path / "dblp.perfetto.json"
    path.write_text(json.dumps(to_chrome_trace(artifact)))
    trace = json.loads(path.read_text())
    tids = {
        e["tid"] for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert tids == set(range(nranks))
    assert artifact["convergence"], "no round samples recorded"
