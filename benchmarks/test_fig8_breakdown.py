"""Figure 8: stage-1 per-iteration time breakdown vs rank count."""

from repro.bench import fig8_time_breakdown
from repro.core import PHASES


def test_fig8_time_breakdown(run_once):
    out = run_once(
        fig8_time_breakdown, ("uk2005",), nranks_list=(2, 4, 8),
        scale=0.3,
    )
    print("\n" + out["text"])
    for row in out["rows"]:
        for ph in PHASES:
            assert row[ph] >= 0.0
        # Find Best Module dominates the compute side of an iteration,
        # matching the paper's breakdown.
        assert row["find_best_module"] >= row["other"] * 0.2
