"""Figure 10: relative parallel efficiency."""

from repro.bench import fig10_parallel_efficiency


def test_fig10_parallel_efficiency(run_once):
    out = run_once(
        fig10_parallel_efficiency,
        small_datasets=("amazon", "dblp"),
        large_datasets=("uk2005", "uk2007"),
        small_ranks=(2, 4, 8),
        large_ranks=(2, 4, 8, 16),
        scale_small=0.8,
        scale_large=0.3,
    )
    print("\n" + out["text"])
    for row in out["rows"]:
        assert row["efficiency"] > 0.0
        if row["p"] == min(
            r["p"] for r in out["rows"] if r["dataset"] == row["dataset"]
        ):
            assert row["efficiency"] == 1.0  # baseline normalization
    # Large graphs hold efficiency better than tiny ones at scale —
    # at least some large-dataset sweep point stays above 30%.
    large = [r for r in out["rows"] if r["group"] == "large"]
    assert max(r["efficiency"] for r in large if r["p"] >= 8) > 0.3
