"""Dynamic-repartitioner guard: skew reduction without quality loss.

Guards the work-stealing repartitioner (``repro.partition.rebalance``)
end to end on a deliberately pathological input: a crisp-community
graph whose high-degree vertices all share the same residue mod the
rank count, so the 1D round-robin placement (delegates disabled via a
huge ``d_high``) piles their adjacency onto rank 0.  Statically that
skew is unfixable without delegates; the dynamic repartitioner must
discover it from the live edge-scan counters and migrate it away
mid-run.

Asserted invariants (rebalance ON vs OFF, same seed, 8 ranks):

* the max/mean *Find Best Module* edge-scan skew, accumulated over all
  of stage 1, improves by >= 1.3x;
* the final codelength matches the non-rebalanced run within 1e-9
  relative (memberships never change during a migration, and on a
  crisp graph both trajectories converge to the same partition);
* every migration event's traffic is accounted under the dedicated
  ``rebalance`` phase of the per-rank comm ledger, both physically
  (frame bytes) and logically (payload bytes).

Results land in ``BENCH_rebalance.json`` at the repo root (with the
host stamp ``result_to_json`` adds);
``repro.bench.export.merge_bench_reports`` folds it into the
trajectory report.  ``REPRO_BENCH_SMOKE=1`` shrinks the communities so
``scripts/check.sh`` finishes fast; every invariant is asserted either
way.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.bench.export import result_to_json
from repro.core import InfomapConfig, distributed_infomap
from repro.core.timing import PHASE_FIND_BEST, PHASE_REBALANCE
from repro.graph import from_edge_array

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

NRANKS = 8
NUM_COMMS = 8
COMM_SIZE = 48 if _SMOKE else 128
MIN_SKEW_IMPROVEMENT = 1.3
SEED = 7


def _hub_heavy_graph():
    """Crisp communities whose heavy vertices all land on rank 0.

    Each community is a circulant ring (every member linked to its next
    two neighbours) plus *heavy* members — the ids congruent to
    0 mod ``NRANKS`` — linked to every other member.  Round-robin 1D
    ownership therefore gives rank 0 every heavy adjacency list.  A
    weak ring of inter-community edges keeps the graph connected
    without blurring the planted structure.
    """
    src_parts, dst_parts, w_parts = [], [], []
    for c in range(NUM_COMMS):
        base = c * COMM_SIZE
        ids = np.arange(base, base + COMM_SIZE, dtype=np.int64)
        off = ids - base
        for k in (1, 2):
            src_parts.append(ids)
            dst_parts.append(base + (off + k) % COMM_SIZE)
            w_parts.append(np.full(COMM_SIZE, 1.0))
        for h in ids[ids % NRANKS == 0].tolist():
            others = ids[ids != h]
            src_parts.append(np.full(others.size, h, dtype=np.int64))
            dst_parts.append(others)
            w_parts.append(np.full(others.size, 1.0))
        nxt = ((c + 1) % NUM_COMMS) * COMM_SIZE
        src_parts.append(np.asarray([base + 1], dtype=np.int64))
        dst_parts.append(np.asarray([nxt + 1], dtype=np.int64))
        w_parts.append(np.asarray([0.05]))
    return from_edge_array(
        np.concatenate(src_parts),
        np.concatenate(dst_parts),
        np.concatenate(w_parts),
    )


def _stage1_work_skew(result) -> float:
    works = np.asarray([
        snap["work"].get(PHASE_FIND_BEST, 0.0)
        for snap in result.extras["per_rank_stage1_timer"]
    ])
    return float(works.max() / works.mean())


def _rebalance_bytes(result, key: str) -> int:
    return sum(
        snap[key].get(PHASE_REBALANCE, 0)
        for snap in result.extras["comm_snapshot"]
    )


def rebalance_skew() -> dict:
    graph = _hub_heavy_graph()
    # Both runs share the profile: no delegates (the skew must be real),
    # deterministic order, and no inactive-set pruning so every round
    # scans every vertex — the accumulated counters then reflect the
    # ownership layout, not the convergence schedule.
    base_kwargs = dict(
        seed=SEED, d_high=10**9, shuffle=False, prune_inactive=False,
    )
    off = distributed_infomap(
        graph, NRANKS, InfomapConfig(**base_kwargs)
    )
    on = distributed_infomap(
        graph, NRANKS, InfomapConfig(
            **base_kwargs,
            dynamic_rebalance=True,
            rebalance_threshold=1.05,
            rebalance_interval=1,
        )
    )

    skew_off = _stage1_work_skew(off)
    skew_on = _stage1_work_skew(on)
    events = on.extras["rebalance_events"]
    rows = [
        {
            "rebalance": False,
            "skew": skew_off,
            "codelength": float(off.codelength),
            "num_modules": int(off.num_modules),
        },
        {
            "rebalance": True,
            "skew": skew_on,
            "skew_improvement": skew_off / skew_on,
            "codelength": float(on.codelength),
            "num_modules": int(on.num_modules),
            "events": len(events),
            "vertices_migrated": sum(e["vertices"] for e in events),
            "entries_migrated": sum(e["entries"] for e in events),
            "rebalance_bytes_physical": _rebalance_bytes(
                on, "bytes_by_phase"
            ),
            "rebalance_bytes_logical": _rebalance_bytes(
                on, "logical_bytes_by_phase"
            ),
        },
    ]
    lines = [
        f"dynamic rebalance, {NUM_COMMS}x{COMM_SIZE} hub-heavy "
        f"communities, {NRANKS} ranks"
        + (" [smoke]" if _SMOKE else ""),
        f"  off  skew {skew_off:6.2f}  L={float(off.codelength):.6f}",
        f"  on   skew {skew_on:6.2f}  L={float(on.codelength):.6f}  "
        f"({len(events)} events, "
        f"{rows[1]['vertices_migrated']} vertices, "
        f"{skew_off / skew_on:.2f}x skew improvement)",
    ]
    return {
        "text": "\n".join(lines),
        "rows": rows,
        "n": NUM_COMMS * COMM_SIZE,
        "nranks": NRANKS,
        "smoke": _SMOKE,
    }


@pytest.mark.rebalance_guard
def test_rebalance_skew(run_once):
    out = run_once(rebalance_skew)
    print("\n" + out["text"])
    off, on = out["rows"]

    assert on["events"] > 0, "the forced skew must trigger migrations"
    improvement = on["skew_improvement"]
    assert improvement >= MIN_SKEW_IMPROVEMENT, (
        f"skew improved only {improvement:.2f}x "
        f"(off {off['skew']:.2f} -> on {on['skew']:.2f}), "
        f"need >= {MIN_SKEW_IMPROVEMENT}x"
    )
    assert abs(on["codelength"] - off["codelength"]) <= (
        1e-9 * abs(off["codelength"])
    ), "rebalancing changed the answer on a crisp-community graph"
    assert on["rebalance_bytes_physical"] > 0
    assert on["rebalance_bytes_logical"] > 0

    result_to_json(out, Path(__file__).resolve().parents[1] /
                   "BENCH_rebalance.json")
