"""Table 3: the delegate algorithm vs the GossipMap-like baseline."""

from repro.bench import table3_speedup


def test_table3_speedup(run_once):
    out = run_once(
        table3_speedup, ("ndweb", "livejournal", "webbase2001", "uk2007"),
        nranks=8, scale=0.3,
    )
    print("\n" + out["text"])
    for row in out["rows"]:
        # The reproducible half of Table 3 at laptop scale is the
        # quality side: the local-information baseline lands at a
        # clearly worse codelength on every dataset (the paper's §2.3
        # argument; the wall-clock side needs 128+ real ranks — see
        # EXPERIMENTS.md).
        assert row["quality_gap_%"] > 0.0, row
        # And the communication mechanism: 1D leaves the baseline with
        # a larger worst-rank ghost set.
        assert row["gossip_max_ghosts"] >= row["ours_max_ghosts"], row
