"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures through
its driver in ``repro.bench.experiments`` and prints the rendered rows
(`pytest benchmarks/ --benchmark-only -s` shows them).  Drivers are
deterministic, so a single measured round per benchmark suffices; the
value under test is the experiment's *content*, the timing is a bonus.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment driver exactly once under pytest-benchmark."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0,
        )

    return _run
