"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures through
its driver in ``repro.bench.experiments`` and prints the rendered rows
(`pytest benchmarks/ --benchmark-only -s` shows them).  Drivers are
deterministic, so a single measured round per benchmark suffices; the
value under test is the experiment's *content*, the timing is a bonus.
"""

import pytest


def pytest_collection_modifyitems(config, items):
    """Skip throughput/observability guards unless ``--run-bench``.

    The guards (frames-vs-pickle wire speedup, swap-cycle rounds/sec,
    tracing overhead) take tens of seconds and measure wall-clock
    ratios, so they don't belong in the default tier-1 sweep;
    ``pytest benchmarks/ --run-bench`` opts in.
    """
    if config.getoption("--run-bench"):
        return
    skip = pytest.mark.skip(reason="needs --run-bench")
    guards = (
        "throughput_guard", "obs_guard", "procs_guard", "rebalance_guard",
        "ingest_guard", "incremental_guard", "live_guard", "overlap_guard",
    )
    for item in items:
        if any(g in item.keywords for g in guards):
            item.add_marker(skip)


@pytest.fixture
def run_once(benchmark):
    """Run an experiment driver exactly once under pytest-benchmark."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0,
        )

    return _run
