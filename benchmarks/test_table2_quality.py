"""Table 2: NMI / F-measure / Jaccard of distributed vs sequential."""

from repro.bench import table2_quality


def test_table2_quality(run_once):
    out = run_once(table2_quality, ("dblp", "amazon"), nranks=4, scale=1.0)
    print("\n" + out["text"])
    for row in out["rows"]:
        # Paper reports ~0.8 across the board; the reproduction target
        # is "all measurements high", NMI first among equals.
        assert row["NMI"] >= 0.7, row
        assert row["F-measure"] >= 0.5, row
        assert row["JI"] >= 0.4, row
