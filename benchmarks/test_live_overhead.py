"""Live telemetry overhead and fidelity guard.

Two claims are guarded, mirroring the tracing guard in
``test_obs_overhead.py``:

* **overhead** — a solve publishing live metrics stays within 5% of
  the live-off wall clock (median of interleaved pairs).  The live
  plane is plain-store seqlocked writes at per-sweep/per-send
  granularity, so the bound is tighter than tracing's 10%.
* **fidelity** — live-on runs are bitwise-identical to live-off (the
  plane is write-only from the solver's perspective), and the final
  snapshot's byte/message counters reconcile exactly with the
  communication ledger.

Results land in ``BENCH_live.json`` at the repo root with the host
stamp (cpu count / load average) the cross-run report relies on.
``REPRO_BENCH_SMOKE=1`` shrinks the graph and pair count so
``scripts/check.sh`` finishes quickly.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.export import result_to_json
from repro.core import InfomapConfig, distributed_infomap, sequential_infomap
from repro.graph import barabasi_albert, load_dataset
from repro.obs.live import LivePlane, LiveSnapshot

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N_VERTICES = 4_000 if _SMOKE else 20_000
ATTACH = 5
PAIRS = 3 if _SMOKE else 5
MAX_OVERHEAD = 1.05
DBLP_SCALE = 0.2 if _SMOKE else 0.5


def live_overhead() -> dict:
    g = barabasi_albert(N_VERTICES, ATTACH, seed=42)
    cfg = InfomapConfig(seed=13, max_levels=2)

    # Interleaved live-off/live-on pairs, median of per-pair ratios:
    # back-to-back runs see the same machine state, so slow drift
    # cancels inside each pair and the median discards the odd pair
    # that straddled a load spike (same protocol as the tracing guard).
    ratios: list[float] = []
    r_plain = r_live = None
    for _ in range(PAIRS):
        t0 = time.perf_counter()
        r_plain = sequential_infomap(g, cfg)
        dt_plain = time.perf_counter() - t0

        plane = LivePlane(1)
        t0 = time.perf_counter()
        r_live = sequential_infomap(g, cfg, live=plane)
        dt_live = time.perf_counter() - t0
        ratios.append(dt_live / dt_plain)

    overhead = float(np.median(ratios))
    rows = [
        {
            "variant": "live_off",
            "codelength": r_plain.codelength,
        },
        {
            "variant": "live_on",
            "codelength": r_live.codelength,
            "overhead": overhead,
            "ratios": ratios,
        },
    ]
    text = (
        f"live-plane overhead, n={N_VERTICES} BA(m={ATTACH}), "
        f"median of {PAIRS} interleaved pairs\n"
        f"  ratios {['%.3f' % r for r in ratios]}\n"
        f"  overhead {overhead:.3f}x"
    )
    return {
        "text": text,
        "rows": rows,
        "identical": bool(
            np.array_equal(r_plain.membership, r_live.membership)
            and r_plain.codelength == r_live.codelength
        ),
    }


@pytest.mark.live_guard
def test_live_overhead(run_once):
    out = run_once(live_overhead)
    print("\n" + out["text"])
    assert out["identical"], "live publishing changed the clustering"
    live_row = out["rows"][1]
    assert live_row["overhead"] <= MAX_OVERHEAD, live_row

    path = Path(__file__).resolve().parents[1] / "BENCH_live.json"
    result_to_json(out, path)
    # The host stamp must land in the report: cross-host comparisons of
    # a wall-clock ratio are meaningless without cpus/load context.
    data = json.loads(path.read_text())
    assert data["host"]["cpus"] >= 1
    assert "load_avg" in data["host"]
    assert data["rows"][1]["overhead"] == live_row["overhead"]


@pytest.mark.live_guard
def test_live_distributed_bitwise_and_reconciled():
    """Distributed live-on == live-off bitwise; snapshot == ledger."""
    data = load_dataset("dblp", scale=DBLP_SCALE)
    cfg = InfomapConfig(seed=5)
    nranks = 4

    plain = distributed_infomap(data.graph, nranks, cfg)
    plane = LivePlane(nranks)
    try:
        lived = distributed_infomap(data.graph, nranks, cfg, live=plane)
        snap = LiveSnapshot.from_plane(plane)
    finally:
        plane.close(unlink=True)

    assert np.array_equal(plain.membership, lived.membership)
    assert (
        plain.extras["codelength_history"]
        == lived.extras["codelength_history"]
    )
    for r, st in enumerate(lived.extras["comm_snapshot"]):
        assert snap.field("bytes_sent")[r] == (
            st["p2p_bytes_sent"] + st["collective_bytes_in"]
        )
        assert snap.field("messages_sent")[r] == (
            st["p2p_messages_sent"] + st["collective_calls"]
        )
