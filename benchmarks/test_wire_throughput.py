"""End-to-end round throughput: typed frames vs the pickle oracle.

Guards the tentpole of the typed frame codec: one full distributed
round's message complement — membership churn, sparse membership-sync
exchange, delegate-proposal allgather, full swap-batch exchange —
driven through :func:`repro.simmpi.run_spmd` at 4 ranks over the
local views of a 50k-vertex delegate-partitioned scale-free graph.
The identical precomputed payload schedule runs once per copy mode,
so both modes apply the same moves and the decoded values must match
bitwise (asserted via checksums computed outside the timed region —
reading a zero-copy frame view costs the same as reading pickle's
copied array, so the placement favours neither codec).

Asserted invariants:

* median speedup of ``copy_mode="frames"`` over ``"pickle"`` >= 2x;
* equal per-rank move counts and bitwise-equal checksums;
* per-rank metered logical bytes under frames <= the pickle baseline
  (equal by construction — the logical meter is codec-independent).

Results land in ``BENCH_wire.json`` at the repo root;
``repro.bench.export.merge_bench_reports`` folds every
``BENCH_*.json`` into one trajectory report.
"""

import statistics
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.export import result_to_json
from repro.core import FlowNetwork
from repro.core.swap import LocalModuleState
from repro.graph import barabasi_albert
from repro.partition import delegate_partition, local_views_delegate
from repro.simmpi import run_spmd

N_VERTICES = 50_000
ATTACH = 5
NRANKS = 4
D_HIGH = 64
N_ROUNDS = 8
CHURN_DIV = 2  # heavy churn: num_owned // 2 movers per rank per round
N_PROPOSALS = 30_000  # delegate-proposal columns gathered per rank
N_REPS = 5
MIN_SPEEDUP = 2.0


def _build_workload():
    """Precompute every payload a round ships, outside the clock.

    Runs the real swap protocol loopback once to capture, per round
    and per rank, the outgoing membership-sync columns and the full
    ``prepare_swap`` batches, plus synthetic delegate-proposal columns
    (hubs, deltas, targets) for the allgather leg.  The timed region
    then only moves bytes — the workload is transport-dominated by
    construction.
    """
    g = barabasi_albert(N_VERTICES, ATTACH, seed=42)
    net = FlowNetwork.from_graph(g)
    dp = delegate_partition(g, NRANKS, d_high=D_HIGH)
    views = local_views_delegate(net, dp)

    rng = np.random.default_rng(7)
    schedule, proposals = [], []
    for _ in range(N_ROUNDS):
        per_rank, prop_rank = [], []
        for v in views:
            n_moves = max(v.num_owned // CHURN_DIV, 1)
            movers = rng.integers(0, v.num_owned, size=n_moves)
            targets = v.global_of[
                rng.integers(0, v.num_local, size=n_moves)
            ]
            per_rank.append((movers, targets))
            prop_rank.append((
                rng.integers(0, N_VERTICES, size=N_PROPOSALS),
                rng.random(N_PROPOSALS),
                rng.integers(0, N_VERTICES, size=N_PROPOSALS),
            ))
        schedule.append(per_rank)
        proposals.append(prop_rank)

    states = [LocalModuleState(v) for v in views]
    ghost_indexes = [
        {
            int(v.global_of[li]): li
            for li in range(v.num_owned + v.num_hubs, v.num_local)
        }
        for v in views
    ]
    sync_payloads, swap_payloads = [], []
    for per_rank in schedule:
        for st, (movers, targets) in zip(states, per_rank):
            st.module_of[movers] = targets
        sync = [st.prepare_membership_sync_delta() for st in states]
        sync_payloads.append(sync)
        for dest in range(NRANKS):
            inbox = [
                sync[src][dest]
                for src in range(NRANKS)
                if src != dest and dest in sync[src]
            ]
            states[dest].apply_membership_sync(
                inbox, ghost_indexes[dest]
            )
        owns = [st.contribution() for st in states]
        swap_payloads.append(
            [st.prepare_swap(own) for st, own in zip(states, owns)]
        )
    return schedule, proposals, sync_payloads, swap_payloads


def _make_prog(schedule, proposals, sync_payloads, swap_payloads):
    def prog(comm):
        inbox, gathered = [], []
        moves = 0
        comm.barrier()
        t0 = time.perf_counter()
        for rnd in range(N_ROUNDS):
            movers, _targets = schedule[rnd][comm.rank]
            moves += movers.size
            msgs = {
                d: c
                for d, c in sync_payloads[rnd][comm.rank].items()
                if d != comm.rank
            }
            inbox.append(comm.exchange(msgs))
            gathered.append(comm.allgather(proposals[rnd][comm.rank]))
            msgs = {
                d: c
                for d, c in swap_payloads[rnd][comm.rank].items()
                if d != comm.rank
            }
            inbox.append(comm.exchange(msgs))
        elapsed = time.perf_counter() - t0
        comm.barrier()
        # Value-identity checksum over everything that crossed the
        # wire, in deterministic order (ascending sources / ranks).
        acc = np.float64(0.0)
        for got in inbox:
            for src in sorted(got):
                for c in got[src]:
                    acc += np.asarray(c).sum(dtype=np.float64)
        for parts in gathered:
            for cols in parts:
                for c in cols:
                    acc += np.asarray(c).sum(dtype=np.float64)
        return moves, float(acc), elapsed

    return prog


def wire_throughput() -> dict:
    prog = _make_prog(*_build_workload())

    for mode in ("pickle", "frames"):  # warm both code paths
        run_spmd(prog, NRANKS, copy_mode=mode)

    times: dict = {"pickle": [], "frames": []}
    outcomes: dict = {}
    ledgers: dict = {}
    for _rep in range(N_REPS):
        for mode in ("pickle", "frames"):
            res = run_spmd(prog, NRANKS, copy_mode=mode)
            times[mode].append(max(r[2] for r in res.results))
            outcomes[mode] = [(r[0], r[1]) for r in res.results]
            ledgers[mode] = res.ledger

    rows = []
    for mode in ("pickle", "frames"):
        med = statistics.median(times[mode])
        ledger = ledgers[mode]
        rows.append({
            "copy_mode": mode,
            "median_s": med,
            "rounds_per_s": N_ROUNDS / med,
            "all_s": sorted(times[mode]),
            "physical_bytes_per_rank": [
                ledger.for_rank(r).total_bytes_sent
                for r in range(NRANKS)
            ],
            "logical_bytes_per_rank": [
                ledger.for_rank(r).total_logical_bytes
                for r in range(NRANKS)
            ],
            "moves_per_rank": [m for m, _c in outcomes[mode]],
        })
    speedup = rows[0]["median_s"] / rows[1]["median_s"]
    rows[1]["speedup"] = speedup

    lines = [
        f"wire round throughput, n={N_VERTICES} BA(m={ATTACH}), "
        f"{NRANKS} ranks, {N_ROUNDS} rounds, median of {N_REPS}"
    ]
    for r in rows:
        lines.append(
            f"  {r['copy_mode']:>6}  {r['rounds_per_s']:>8.2f} rounds/s"
            f"  ({r['median_s'] * 1e3:.1f} ms"
            + (f", speedup {r['speedup']:.2f}x)" if "speedup" in r
               else ")")
        )
    return {
        "text": "\n".join(lines),
        "rows": rows,
        "moves_equal": (
            [m for m, _ in outcomes["pickle"]]
            == [m for m, _ in outcomes["frames"]]
        ),
        "checksums_equal": (
            [c for _, c in outcomes["pickle"]]
            == [c for _, c in outcomes["frames"]]
        ),
        "n": N_VERTICES,
        "nranks": NRANKS,
        "rounds": N_ROUNDS,
        "proposals_per_rank": N_PROPOSALS,
    }


@pytest.mark.throughput_guard
def test_wire_throughput(run_once):
    out = run_once(wire_throughput)
    print("\n" + out["text"])
    assert out["moves_equal"], "copy modes applied different move counts"
    assert out["checksums_equal"], "decoded values diverged across modes"

    pickle_row, frames_row = out["rows"]
    assert frames_row["speedup"] >= MIN_SPEEDUP, (
        f"frames/pickle speedup {frames_row['speedup']:.2f} "
        f"< {MIN_SPEEDUP}"
    )
    # Logical traffic is codec-independent; frames must not inflate it.
    for fb, pb in zip(
        frames_row["logical_bytes_per_rank"],
        pickle_row["logical_bytes_per_rank"],
    ):
        assert fb <= pb

    result_to_json(out, Path(__file__).resolve().parents[1] /
                   "BENCH_wire.json")
