"""Figure 4: MDL convergence, sequential vs distributed."""

from repro.bench import fig4_convergence


def test_fig4_convergence(run_once):
    out = run_once(
        fig4_convergence, ("amazon", "dblp", "ndweb", "youtube"),
        nranks=4, scale=0.5,
    )
    print("\n" + out["text"])
    for row in out["rows"]:
        # The paper's claim: distributed MDL converges close to the
        # sequential value on every quality dataset.
        assert row["gap_%"] < 12.0, row
    for name, s in out["series"].items():
        dist = s["distributed"]
        assert dist[-1] <= dist[0]  # net convergence
