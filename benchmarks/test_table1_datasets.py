"""Table 1: the dataset inventory (stand-ins vs paper sizes)."""

from repro.bench import table1


def test_table1_datasets(run_once):
    out = run_once(table1, scale=0.5)
    print("\n" + out["text"])
    assert len(out["rows"]) == 9
    # Size ordering of the paper must be preserved by the stand-ins.
    sizes = {r["name"]: r["standin_E"] for r in out["rows"]}
    assert sizes["UK-2007"] > sizes["UK-2005"] > sizes["DBLP"]
