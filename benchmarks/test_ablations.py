"""Ablations of the design choices DESIGN.md calls out."""

from repro.bench import (
    ablation_d_high,
    ablation_delegate_consensus,
    ablation_info_swap,
    ablation_min_label,
    ablation_rebalance,
)


def test_ablation_delegate_consensus(run_once):
    out = run_once(ablation_delegate_consensus, nranks=8, scale=0.5)
    print("\n" + out["text"])
    rows = {r["consensus"]: r for r in out["rows"]}
    # Aggregate consensus must not be worse than the min-local rule.
    assert rows["aggregate"]["L_dist"] <= rows["min_local"]["L_dist"] + 0.15


def test_ablation_info_swap(run_once):
    out = run_once(ablation_info_swap, nranks=8, scale=0.5)
    print("\n" + out["text"])
    rows = {r["full_module_info"]: r for r in out["rows"]}
    assert rows[True]["L_dist"] <= rows[False]["L_dist"] + 0.15


def test_ablation_min_label(run_once):
    out = run_once(ablation_min_label, nranks=8, scale=0.5)
    print("\n" + out["text"])
    assert len(out["rows"]) == 2  # both modes terminate


def test_ablation_rebalance(run_once):
    out = run_once(ablation_rebalance, "uk2005", nranks=16, scale=0.5)
    print("\n" + out["text"])
    rows = {r["rebalance"]: r for r in out["rows"]}
    assert rows[True]["imbalance"] <= rows[False]["imbalance"]


def test_ablation_d_high(run_once):
    out = run_once(ablation_d_high, "uk2005", nranks=16, scale=0.5)
    print("\n" + out["text"])
    by = {str(r["d_high"]): r for r in out["rows"]}
    # More aggressive thresholds duplicate more hubs...
    assert by["8"]["num_hubs"] >= by["128"]["num_hubs"]
    # ...and disabling delegation entirely leaves the worst balance.
    assert by[str(1 << 30)]["edge_imbalance"] >= by["p"]["edge_imbalance"]
