"""Figure 6: per-rank workload, 1D vs delegate partitioning."""

from repro.bench import fig6_workload_balance


def test_fig6_workload_balance(run_once):
    out = run_once(fig6_workload_balance, nranks=32, scale=0.5)
    print("\n" + out["text"])
    for row in out["rows"]:
        # Delegate partitioning must be near-perfectly balanced while
        # 1D shows a visible max/mean gap on every hubby dataset.
        assert row["del_imbal"] <= 1.02, row
        assert row["1d_imbal"] > row["del_imbal"], row
