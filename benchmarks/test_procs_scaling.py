"""Process-backend scaling guard: procs vs threads on a multi-core host.

Guards the tentpole of the multiprocess SPMD backend: the full
distributed Infomap pipeline at 4 ranks on a generated scale-free
graph, run once per backend.  The thread backend serializes rank
compute on the GIL, so on a host with enough cores the process backend
must win by a real margin; on a single-core host (CI containers) the
speedup guard auto-skips — there is no parallelism to buy — while the
equivalence assertions still run.

Asserted invariants:

* threads and procs produce **bitwise-identical memberships** and
  identical codelength trajectories (the backends differ only in
  transport, never in decisions);
* identical logical (``payload_nbytes``) ledger totals and message
  counts per phase per rank;
* on a multi-core host: median procs speedup >= 1.5x over threads.

Results land in ``BENCH_procs.json`` at the repo root (including the
host's CPU count, so a recorded sub-1.5x speedup on a 1-CPU box is
legible rather than alarming);
``repro.bench.export.merge_bench_reports`` folds every
``BENCH_*.json`` into one trajectory report.

``REPRO_BENCH_SMOKE=1`` shrinks the graph and repetition count so the
whole guard finishes in seconds — the profile ``scripts/check.sh``
uses; equivalence is asserted either way.
"""

import os
import statistics
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.export import result_to_json
from repro.core import InfomapConfig, distributed_infomap
from repro.graph import barabasi_albert

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N_VERTICES = 2_000 if _SMOKE else 20_000
ATTACH = 5
NRANKS = 4
N_REPS = 1 if _SMOKE else 3
MIN_SPEEDUP = 1.5
SEED = 11


def _run_backend(graph, backend):
    cfg = InfomapConfig(seed=SEED)
    t0 = time.perf_counter()
    result = distributed_infomap(graph, NRANKS, cfg, backend=backend)
    return time.perf_counter() - t0, result


def procs_scaling() -> dict:
    graph = barabasi_albert(N_VERTICES, ATTACH, seed=SEED)

    for backend in ("threads", "procs"):  # warm both code paths
        _run_backend(graph, backend)

    times: dict = {"threads": [], "procs": []}
    results: dict = {}
    for _rep in range(N_REPS):
        for backend in ("threads", "procs"):
            elapsed, result = _run_backend(graph, backend)
            times[backend].append(elapsed)
            results[backend] = result

    rt, rp = results["threads"], results["procs"]
    ledger_equal = all(
        st["logical_bytes_by_phase"] == sp["logical_bytes_by_phase"]
        and st["messages_by_phase"] == sp["messages_by_phase"]
        for st, sp in zip(rt.extras["comm_snapshot"],
                          rp.extras["comm_snapshot"])
    )

    rows = []
    for backend in ("threads", "procs"):
        med = statistics.median(times[backend])
        r = results[backend]
        rows.append({
            "backend": backend,
            "median_s": med,
            "all_s": sorted(times[backend]),
            "codelength": float(r.codelength),
            "num_modules": int(r.membership.max()) + 1,
            "converged": bool(r.converged),
        })
    speedup = rows[0]["median_s"] / rows[1]["median_s"]
    rows[1]["speedup"] = speedup

    cpus = os.cpu_count() or 1
    lines = [
        f"procs-vs-threads backend, n={N_VERTICES} BA(m={ATTACH}), "
        f"{NRANKS} ranks, {cpus} cpus, median of {N_REPS}"
        + (" [smoke]" if _SMOKE else "")
    ]
    for r in rows:
        lines.append(
            f"  {r['backend']:>7}  {r['median_s']:>7.2f} s"
            + (f"  (speedup {r['speedup']:.2f}x)" if "speedup" in r
               else "")
        )
    return {
        "text": "\n".join(lines),
        "rows": rows,
        "membership_equal": bool(
            np.array_equal(rt.membership, rp.membership)
        ),
        "trajectory_equal": (
            rt.extras["codelength_history"]
            == rp.extras["codelength_history"]
        ),
        "ledger_equal": ledger_equal,
        "n": N_VERTICES,
        "nranks": NRANKS,
        "cpus": cpus,
        "smoke": _SMOKE,
    }


@pytest.mark.procs_guard
def test_procs_scaling(run_once):
    out = run_once(procs_scaling)
    print("\n" + out["text"])
    assert out["membership_equal"], (
        "procs backend produced a different membership than threads"
    )
    assert out["trajectory_equal"], (
        "codelength trajectories diverged across backends"
    )
    assert out["ledger_equal"], (
        "per-phase logical ledger totals diverged across backends"
    )

    result_to_json(out, Path(__file__).resolve().parents[1] /
                   "BENCH_procs.json")

    if out["cpus"] < NRANKS:
        pytest.skip(
            f"host has {out['cpus']} CPUs < {NRANKS} ranks: no "
            "parallelism for the process backend to exploit; "
            "equivalence asserted, speedup guard skipped"
        )
    speedup = out["rows"][1]["speedup"]
    assert speedup >= MIN_SPEEDUP, (
        f"procs/threads speedup {speedup:.2f} < {MIN_SPEEDUP} on a "
        f"{out['cpus']}-CPU host"
    )
