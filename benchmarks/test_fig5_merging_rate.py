"""Figure 5: vertex merging rate per outer iteration."""

from repro.bench import fig5_merging_rate


def test_fig5_merging_rate(run_once):
    out = run_once(
        fig5_merging_rate, ("amazon", "dblp", "ndweb", "youtube"),
        nranks=4, scale=0.5,
    )
    print("\n" + out["text"])
    for row in out["rows"]:
        # Paper: the delegate stage merges >= ~50% of vertices in the
        # first iteration.
        assert row["first_rate_dist"] >= 0.4, row
        assert row["first_rate_seq"] >= 0.4, row
